package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/verify"
)

// The store must satisfy the three engine-layer cache interfaces it
// claims to implement structurally.
var (
	_ logic.VerdictCache = (*Store)(nil)
	_ legal.GuardCache   = (*Store)(nil)
	_ verify.SatCache    = (*Store)(nil)
)

// randComp builds a random computation over elements A-C and classes
// X/Y (mirroring the logic package's agreement-test generator, which is
// unexported there).
func randComp(rng *rand.Rand, maxN int) *core.Computation {
	n := 2 + rng.Intn(maxN-1)
	b := core.NewBuilder()
	ids := make([]core.EventID, n)
	for i := 0; i < n; i++ {
		elem := string(rune('A' + rng.Intn(3)))
		class := string(rune('X' + rng.Intn(2)))
		ids[i] = b.Event(elem, class, core.Params{"v": core.Int(int64(rng.Intn(3)))})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				b.Enable(ids[i], ids[j])
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// randFormula builds a random restriction over the X/Y classes with
// enough shape diversity to hit every engine stage: the □-invariant
// reduction, the pair reduction, the lattice engine, and the sequence
// cascade (via temporal disjunctions and ∃ with temporal bodies).
func randFormula(rng *rand.Rand) logic.Formula {
	ref := core.Ref("", "X")
	if rng.Intn(2) == 0 {
		ref = core.Ref("", "Y")
	}
	atom := func(v string) logic.Formula {
		switch rng.Intn(3) {
		case 0:
			return logic.Occurred{Var: v}
		case 1:
			return logic.New{Var: v}
		default:
			return logic.Potential{Var: v}
		}
	}
	imm := func() logic.Formula {
		return logic.ForAll{Var: "e", Ref: ref, Body: atom("e")}
	}
	switch rng.Intn(8) {
	case 0:
		return logic.Box{F: imm()}
	case 1:
		return logic.Diamond{F: imm()}
	case 2:
		return logic.Box{F: logic.Implies{If: imm(), Then: logic.Box{F: imm()}}}
	case 3:
		return logic.Not{F: logic.Box{F: imm()}}
	case 4:
		return logic.And{logic.Box{F: imm()}, logic.Diamond{F: imm()}}
	case 5:
		return logic.Or{logic.Box{F: imm()}, logic.Diamond{F: imm()}}
	case 6:
		return logic.Exists{Var: "z", Ref: ref, Body: logic.Box{F: atom("z")}}
	default:
		return imm() // non-temporal invariant
	}
}

func rwStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cxString(cx *logic.Counterexample) string {
	if cx == nil {
		return "<pass>"
	}
	return cx.Error()
}

// TestAgreementCacheOnOff is the acceptance agreement suite: across 120
// randomized computations, verdicts (and their rendered witnesses) with
// the cache enabled — both the writing first pass and the hitting second
// pass — are identical to cache-off evaluation.
func TestAgreementCacheOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := rwStore(t)
	for i := 0; i < 120; i++ {
		c := randComp(rng, 6)
		f := randFormula(rng)
		want := logic.Holds(f, c, logic.CheckOptions{})
		cold := logic.Holds(f, c, logic.CheckOptions{Cache: s})
		if cxString(cold) != cxString(want) {
			t.Fatalf("case %d: cold cached verdict differs:\n  cache-off: %s\n  cache-on:  %s\n  formula %s on %s",
				i, cxString(want), cxString(cold), f, c)
		}
		// The second pass must serve the on-disk record (the verdict
		// layer has no in-process memoization) and agree again.
		warm := logic.Holds(f, c, logic.CheckOptions{Cache: s})
		if cxString(warm) != cxString(want) {
			t.Fatalf("case %d: warm cached verdict differs:\n  cache-off: %s\n  cache-on:  %s", i, cxString(want), cxString(warm))
		}
		if warm != nil {
			if err := warm.Verify(); err != nil {
				t.Fatalf("case %d: rehydrated counterexample does not falsify: %v", i, err)
			}
		}
	}
	if st := s.Stats(); st.Hits == 0 || st.Writes == 0 {
		t.Errorf("agreement run exercised no cache traffic: %+v", st)
	}
}

// A warm lookup in a fresh process (simulated by a fresh computation
// with the same fingerprint and a fresh store handle) must hit and
// render the identical counterexample.
func TestVerdictRoundTripAcrossHandles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	s1, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		seed := int64(i)
		mk := func() *core.Computation { return randComp(rand.New(rand.NewSource(seed)), 6) }
		f := randFormula(rng)
		c1 := mk()
		want := logic.Holds(f, c1, logic.CheckOptions{Cache: s1})

		s2, err := Open(dir, ReadOnly)
		if err != nil {
			t.Fatal(err)
		}
		c2 := mk()
		if core.Fingerprint(c1) != core.Fingerprint(c2) {
			t.Fatal("identical builds fingerprint differently")
		}
		got, ok := s2.Lookup(f, c2, logic.EngineAuto)
		if !ok {
			t.Fatalf("case %d: fresh handle missed a just-written verdict", i)
		}
		if cxString(got) != cxString(want) {
			t.Fatalf("case %d: rehydrated verdict differs:\n  want %s\n  got  %s", i, cxString(want), cxString(got))
		}
		if s2.Stats().Writes != 0 {
			t.Fatal("read-only handle wrote")
		}
	}
}

// corruptEveryFile flips a byte in (or truncates) every record file.
func corruptEveryFile(t *testing.T, dir string, truncate bool) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if truncate {
			data = data[:len(data)/2]
		} else if len(data) > 0 {
			data[len(data)/2] ^= 0xff
		}
		n++
		return os.WriteFile(path, data, 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Corrupted and truncated records must decode to misses — counted as
// misses — and recomputation must restore the identical verdicts.
func TestCorruptRecordsDegradeToMiss(t *testing.T) {
	for _, truncate := range []bool{false, true} {
		name := "flipped"
		if truncate {
			name = "truncated"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			dir := t.TempDir()
			s, err := Open(dir, ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			type tc struct {
				c *core.Computation
				f logic.Formula
				w string
			}
			var cases []tc
			for i := 0; i < 20; i++ {
				c := randComp(rng, 6)
				f := randFormula(rng)
				cases = append(cases, tc{c, f, cxString(logic.Holds(f, c, logic.CheckOptions{Cache: s}))})
			}
			if n := corruptEveryFile(t, dir, truncate); n == 0 {
				t.Fatal("no records written")
			}
			s2, err := Open(dir, ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			for i, tt := range cases {
				got := logic.Holds(tt.f, tt.c, logic.CheckOptions{Cache: s2})
				if cxString(got) != tt.w {
					t.Fatalf("case %d: corrupted cache changed the verdict: want %s, got %s", i, tt.w, cxString(got))
				}
			}
			if st := s2.Stats(); st.Misses == 0 {
				t.Error("corrupted records were not counted as misses")
			} else if st.Hits != 0 {
				t.Errorf("corrupted records produced %d hits", st.Hits)
			}
		})
	}
}

// A verdict recorded for one formula must never be served for another
// (the formula-hash match in decodeVerdict), even under a manufactured
// key collision: a record whose payload names an unrelated formula is a
// miss.
func TestVerdictFormulaMismatchIsMiss(t *testing.T) {
	s := rwStore(t)
	c := randComp(rand.New(rand.NewSource(9)), 5)
	fail := logic.FalseF{}
	if cx := logic.Holds(fail, c, logic.CheckOptions{Cache: s}); cx == nil {
		t.Fatal("FALSE held")
	}
	// Graft the FALSE record onto TRUE's key: lookup must reject it.
	other := logic.TrueF{}
	data, err := os.ReadFile(s.path(verdictKey(fail, c, logic.EngineAuto), kindVerdict))
	if err != nil {
		t.Fatal(err)
	}
	target := s.path(verdictKey(other, c, logic.EngineAuto), kindVerdict)
	if err := os.MkdirAll(filepath.Dir(target), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(other, c, logic.EngineAuto); ok {
		t.Fatal("verdict for a different formula was served")
	}
}

// Guard vectors round-trip, including the nil ("no guard fires") case.
func TestGuardsRoundTrip(t *testing.T) {
	for _, hold := range [][]bool{nil, {true}, {false, true, false}, make([]bool, 17)} {
		payload := encodeGuards(hold)
		got, err := decodeGuards(payload)
		if err != nil {
			t.Fatalf("decodeGuards(%v): %v", hold, err)
		}
		if len(got) != len(hold) {
			t.Fatalf("guards %v round-tripped to %v", hold, got)
		}
		for i := range hold {
			if got[i] != hold[i] {
				t.Fatalf("guards %v round-tripped to %v", hold, got)
			}
		}
	}
}

// Concurrent writers and readers on one store must be race-free and
// must never corrupt each other (ci.sh runs this under -race).
func TestConcurrentStoreTraffic(t *testing.T) {
	s := rwStore(t)
	rng := rand.New(rand.NewSource(11))
	type work struct {
		c *core.Computation
		f logic.Formula
		w string
	}
	var items []work
	for i := 0; i < 8; i++ {
		c := randComp(rng, 5)
		f := randFormula(rng)
		items = append(items, work{c, f, cxString(logic.Holds(f, c, logic.CheckOptions{}))})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for _, it := range items {
					if got := logic.Holds(it.f, it.c, logic.CheckOptions{Cache: s}); cxString(got) != it.w {
						t.Errorf("concurrent cached verdict differs: want %s, got %s", it.w, cxString(got))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// The lattice artifact must hydrate a fresh computation's shared lattice
// without re-enumerating.
func TestLatticePersistAndHydrate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *core.Computation { return randComp(rand.New(rand.NewSource(21)), 6) }
	c1 := mk()
	f := logic.Box{F: logic.ForAll{Var: "e", Ref: core.Ref("", "X"), Body: logic.Occurred{Var: "e"}}}
	// Evaluate through the cache: the miss path probes (no artifact yet),
	// the evaluation enumerates, the write-behind persists.
	logic.Holds(f, c1, logic.CheckOptions{Cache: s, Engine: logic.EngineLattice})
	if !history.Shared(c1).Enumerated() {
		t.Skip("engine did not enumerate the lattice for this formula")
	}

	c2 := mk()
	s2, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Force a verdict miss for a *different* formula so the lookup path
	// hydrates, then evaluation uses the hydrated lattice.
	f2 := logic.Diamond{F: logic.ForAll{Var: "e", Ref: core.Ref("", "Y"), Body: logic.Occurred{Var: "e"}}}
	want := cxString(logic.Holds(f2, mk(), logic.CheckOptions{}))
	builds := history.LatticeBuilds()
	got := cxString(logic.Holds(f2, c2, logic.CheckOptions{Cache: s2, Engine: logic.EngineLattice}))
	if got != want {
		t.Fatalf("hydrated-lattice verdict differs: want %s, got %s", want, got)
	}
	if history.Shared(c2).Enumerated() && history.LatticeBuilds() != builds {
		t.Error("warm evaluation re-enumerated a persisted lattice")
	}
}

// Trim must evict oldest-first down to the budget and count evictions.
func TestTrimEvicts(t *testing.T) {
	s := rwStore(t)
	c := randComp(rand.New(rand.NewSource(5)), 6)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		logic.Holds(randFormula(rng), c, logic.CheckOptions{Cache: s})
	}
	if s.Stats().Writes == 0 {
		t.Fatal("no records written")
	}
	s.Trim(1) // 1-byte budget: everything must go
	if s.Stats().Evictions == 0 {
		t.Error("Trim evicted nothing")
	}
	left := 0
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			left++
		}
		return nil
	})
	if left != 0 {
		t.Errorf("%d records left after Trim(1)", left)
	}
}

// Nil stores (Open in Off mode) must flow through every method as
// misses and no-ops.
func TestNilStoreIsInert(t *testing.T) {
	s, err := Open("", Off)
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("Off mode returned a non-nil store")
	}
	c := randComp(rand.New(rand.NewSource(2)), 4)
	if _, ok := s.Lookup(logic.TrueF{}, c, logic.EngineAuto); ok {
		t.Error("nil store hit")
	}
	s.Store(logic.TrueF{}, c, logic.EngineAuto, nil)
	s.Trim(0)
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil store counted traffic: %+v", st)
	}
}
