package store

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// recordPath locates the single on-disk file for a key/kind via the
// store's layout (test-only helper; production code goes through path).
func recordPath(t *testing.T, s *Store, key string, kind byte) string {
	t.Helper()
	p := s.path(key, kind)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("record %s kind %d not on disk: %v", key, kind, err)
	}
	return p
}

func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatalf("backdate %s: %v", path, err)
	}
}

// A read hit on a record older than touchInterval must refresh its
// mtime; Trim evicts by mtime, so without the touch the hottest records
// are evicted first.
func TestReadHitRefreshesMtime(t *testing.T) {
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := CorpusKey("spec", "fp")
	s.PutCorpus(k, []byte("payload"))
	p := recordPath(t, s, k, kindCorpus)
	backdate(t, p, 2*time.Hour)

	if _, ok := s.GetCorpus(k); !ok {
		t.Fatal("expected corpus hit")
	}
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if age := time.Since(info.ModTime()); age > time.Minute {
		t.Fatalf("read hit did not refresh mtime: record still %v old", age)
	}
}

// Reads younger than touchInterval must not touch: a hot record costs
// one utimes per interval, not one per read.
func TestReadHitTouchThrottled(t *testing.T) {
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := CorpusKey("spec", "fp")
	s.PutCorpus(k, []byte("payload"))
	p := recordPath(t, s, k, kindCorpus)
	backdate(t, p, 30*time.Minute)
	before, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetCorpus(k); !ok {
		t.Fatal("expected corpus hit")
	}
	after, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("mtime touched under throttle interval: %v -> %v", before.ModTime(), after.ModTime())
	}
}

// The regression the bugfix is for: a just-read record survives a Trim
// that evicts its never-read sibling, even though the survivor was
// written first.
func TestTrimKeepsJustReadRecord(t *testing.T) {
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	hot := CorpusKey("spec", "hot")
	cold := CorpusKey("spec", "cold")
	s.PutCorpus(hot, bytes.Repeat([]byte("h"), 64))
	s.PutCorpus(cold, bytes.Repeat([]byte("c"), 64))
	hotPath := recordPath(t, s, hot, kindCorpus)
	coldPath := recordPath(t, s, cold, kindCorpus)
	// hot is the OLDER record — written first in mtime terms — so under
	// the pre-fix LRU it would be evicted first despite being read.
	backdate(t, hotPath, 3*time.Hour)
	backdate(t, coldPath, 2*time.Hour)

	if _, ok := s.GetCorpus(hot); !ok {
		t.Fatal("expected corpus hit")
	}
	info, err := os.Stat(hotPath)
	if err != nil {
		t.Fatal(err)
	}
	// Budget for exactly one record: Trim must evict one of the two.
	s.Trim(info.Size())

	if _, err := os.Stat(hotPath); err != nil {
		t.Fatalf("Trim evicted the just-read record: %v", err)
	}
	if _, err := os.Stat(coldPath); !os.IsNotExist(err) {
		t.Fatalf("Trim kept the never-read sibling (err=%v)", err)
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

func TestEnvBudget(t *testing.T) {
	cases := []struct {
		name  string
		value string
		set   bool
		want  int64
		warns bool
	}{
		{name: "unset", want: 0, warns: false},
		{name: "empty", set: true, value: "", want: 0, warns: false},
		{name: "valid", set: true, value: "123456", want: 123456, warns: false},
		{name: "malformed", set: true, value: "1.5GB", want: 0, warns: true},
		{name: "negative", set: true, value: "-4096", want: 0, warns: true},
		{name: "zero", set: true, value: "0", want: 0, warns: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.set {
				t.Setenv("GEM_CACHE_BUDGET", tc.value)
			} else {
				t.Setenv("GEM_CACHE_BUDGET", "")
				os.Unsetenv("GEM_CACHE_BUDGET")
			}
			var warn bytes.Buffer
			if got := EnvBudget(&warn); got != tc.want {
				t.Fatalf("EnvBudget() = %d, want %d", got, tc.want)
			}
			if tc.warns != (warn.Len() > 0) {
				t.Fatalf("warns = %v, want %v (output %q)", warn.Len() > 0, tc.warns, warn.String())
			}
		})
	}
	// A nil warn writer must not panic on the warning path.
	t.Setenv("GEM_CACHE_BUDGET", "bogus")
	if got := EnvBudget(nil); got != 0 {
		t.Fatalf("EnvBudget(nil) = %d, want 0", got)
	}
}

// Corpus and manifest records ride the same framing, integrity, and
// accounting rules as verdicts: missing and corrupt entries miss, round
// trips hit.
func TestCorpusRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := CorpusKey("spechash", "fingerprint")
	if _, ok := s.GetCorpus(k); ok {
		t.Fatal("hit on absent corpus entry")
	}
	s.PutCorpus(k, []byte("entry"))
	got, ok := s.GetCorpus(k)
	if !ok || string(got) != "entry" {
		t.Fatalf("GetCorpus = %q, %v; want entry, true", got, ok)
	}
	s.PutManifest("campaign", []byte("manifest"))
	got, ok = s.GetManifest("campaign")
	if !ok || string(got) != "manifest" {
		t.Fatalf("GetManifest = %q, %v; want manifest, true", got, ok)
	}
	// Corrupt the corpus record on disk: must decode to a miss.
	p := recordPath(t, s, k, kindCorpus)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(p, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetCorpus(k); ok {
		t.Fatal("hit on corrupt corpus entry")
	}
	// Nil store: every corpus operation is a miss / no-op.
	var nilStore *Store
	if _, ok := nilStore.GetCorpus(k); ok {
		t.Fatal("nil store hit")
	}
	nilStore.PutCorpus(k, nil)
	if _, ok := nilStore.GetManifest("campaign"); ok {
		t.Fatal("nil store manifest hit")
	}
}
