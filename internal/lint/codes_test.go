package lint_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gem/internal/lint"
)

// TestRegistryCompleteAndSorted pins the shared code registry: one row
// per code, contiguous from GEM001 with no gaps (a skipped number means
// a tool invented a code without registering it), sorted by code, and
// every row carrying a non-empty summary. -codes on both gemlint and
// gemgo print this table, so a hole here is a hole in their output.
func TestRegistryCompleteAndSorted(t *testing.T) {
	reg := lint.Registry()
	if len(reg) == 0 {
		t.Fatal("empty registry")
	}
	for i, ci := range reg {
		want := lint.Code(fmt.Sprintf("GEM%03d", i+1))
		if ci.Code != want {
			t.Errorf("registry[%d] = %s, want %s (registry must be contiguous and sorted)", i, ci.Code, want)
		}
		if ci.Summary == "" {
			t.Errorf("registry[%d] (%s) has an empty summary", i, ci.Code)
		}
		if ci.Severity != lint.SeverityWarning && ci.Severity != lint.SeverityError {
			t.Errorf("registry[%d] (%s) has severity %v", i, ci.Code, ci.Severity)
		}
	}
	if last := reg[len(reg)-1].Code; last != lint.CodeAddWaitRace {
		t.Errorf("registry ends at %s, want %s", last, lint.CodeAddWaitRace)
	}
}

// TestPrintRegistryListsEveryCode checks the -codes rendering carries
// every registered code, GEM017 and the race codes included.
func TestPrintRegistryListsEveryCode(t *testing.T) {
	var buf bytes.Buffer
	lint.PrintRegistry(&buf)
	out := buf.String()
	for _, ci := range lint.Registry() {
		if !strings.Contains(out, string(ci.Code)+"  ") {
			t.Errorf("PrintRegistry output missing %s:\n%s", ci.Code, out)
		}
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != len(lint.Registry()) {
		t.Errorf("PrintRegistry printed a different number of lines than the registry has rows:\n%s", out)
	}
}
