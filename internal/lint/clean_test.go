package lint_test

import (
	"testing"

	"gem/internal/lint"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/dbupdate"
	"gem/internal/problems/oneslot"
	"gem/internal/problems/rw"
	"gem/internal/spec"
)

// TestShippedSpecsLintClean asserts every problem specification the repo
// ships produces zero lint errors. Warnings are tolerated (dbupdate
// intentionally declares per-site classes that only the computation
// builder touches) but errors would mean the linter flags known-good
// specs, which is the cardinal false-positive failure mode.
func TestShippedSpecsLintClean(t *testing.T) {
	mustSpec := func(s *spec.Spec, err error) *spec.Spec {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	specs := map[string]*spec.Spec{
		"rw":         mustSpec(rw.ProblemSpec([]string{"r1", "r2", "w1"}, true)),
		"rw-nopri":   mustSpec(rw.ProblemSpec([]string{"r1", "w1"}, false)),
		"boundedbuf": mustSpec(boundedbuf.ProblemSpec(boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 2, Capacity: 2})),
		"oneslot":    mustSpec(oneslot.ProblemSpec(oneslot.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2})),
		"dbupdate": dbupdate.Spec(dbupdate.Config{
			Sites:   2,
			Updates: []dbupdate.Update{{Site: 0, Value: 1}},
		}),
	}
	for name, s := range specs {
		res := lint.Analyze(s)
		if errs := res.Errors(); len(errs) > 0 {
			for _, d := range errs {
				t.Errorf("%s: unexpected lint error: %s", name, d)
			}
		}
		if doomed := res.Doomed(); len(doomed) > 0 {
			t.Errorf("%s: %d constraints marked doomed in a known-good spec", name, len(doomed))
		}
	}
}

// TestForSpecMemoizes checks the cached entry is returned for repeat
// lookups of the same spec pointer.
func TestForSpecMemoizes(t *testing.T) {
	s, err := rw.ProblemSpec([]string{"r1", "w1"}, false)
	if err != nil {
		t.Fatal(err)
	}
	a := lint.ForSpec(s)
	b := lint.ForSpec(s)
	if a != b {
		t.Fatal("ForSpec did not memoize: distinct results for the same spec")
	}
}
