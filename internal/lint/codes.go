package lint

import (
	"fmt"
	"io"
)

// The Go front-end codes. They live in this package — not in
// internal/gofront — because the GEM code namespace is a single
// append-only table shared by every tool (gemlint, gemgo, the SARIF
// rules block), and the registry below is its one source of truth.
const (
	// CodeChanNoPartner: a channel operation with no possible partner
	// anywhere in the extracted model — a receive on a channel nothing
	// sends on or closes, or a send no receive can drain (accounting for
	// buffering). The operation blocks forever.
	CodeChanNoPartner Code = "GEM013"
	// CodeLockInversion: two mutexes are acquired in opposite orders by
	// different goroutines — a cycle in the lock-ordering graph, so an
	// interleaving exists in which both goroutines block forever.
	CodeLockInversion Code = "GEM014"
	// CodeBlockForever: a goroutine that can block forever — a cycle in
	// the extracted wait-for graph (crossed channel rendezvous, a
	// WaitGroup wait no Done can satisfy), the static analogue of a
	// partial deadlock.
	CodeBlockForever Code = "GEM015"
	// CodeDoubleLock: a goroutine locks a non-reentrant mutex it already
	// holds; the second acquisition waits for a release that can only
	// happen after it — a guaranteed self-deadlock.
	CodeDoubleLock Code = "GEM016"
)

// The verification codes — produced by gemverify's SARIF output rather
// than a static analysis: each is a dynamic finding over an exhaustive
// exploration, not a lint of the spec text.
const (
	// CodeSatRefuted: a solution computation fails the sat check against
	// its problem specification — the verification matrix found a
	// counterexample computation, so the solution does not implement the
	// problem.
	CodeSatRefuted Code = "GEM017"
)

// The data-race codes — produced by the static race pass
// (internal/race) over gofront-extracted models: two operations that
// may happen in parallel (incomparable in the extracted partial order)
// and conflict on the same object.
const (
	// CodeDataRace: a write to a shared variable may happen in parallel
	// with another access to it, and no common lock (with at least one
	// side holding the write lock) separates them.
	CodeDataRace Code = "GEM018"
	// CodeCloseRace: a channel close may happen in parallel with a send
	// on the same channel — the send panics if the close wins the race.
	CodeCloseRace Code = "GEM019"
	// CodeAddWaitRace: a WaitGroup.Add may happen in parallel with a
	// Wait on the same WaitGroup — Wait can return before the work the
	// Add accounts for has been registered.
	CodeAddWaitRace Code = "GEM020"
)

// CodeInfo is one row of the shared code registry: a stable code, its
// one-line summary (also the SARIF rule description), and the severity
// its producer assigns.
type CodeInfo struct {
	Code     Code     `json:"code"`
	Summary  string   `json:"summary"`
	Severity Severity `json:"severity"`
}

// registry is the single shared table of every GEM diagnostic code.
// Append-only, like the codes themselves: gemlint, gemgo, and the SARIF
// writer all consume this table, so a code's summary and severity are
// stated exactly once.
var registry = []CodeInfo{
	{CodeDanglingElement, "reference to an undeclared element", SeverityError},
	{CodeDanglingClass, "reference to an undeclared event class", SeverityError},
	{CodeDanglingParam, "read of an undeclared event parameter", SeverityError},
	{CodePrereqCycle, "unsatisfiable prerequisite structure (cycle or no well-founded start)", SeverityError},
	{CodeAccessForbidden, "required enable edge forbidden by the group access relation", SeverityError},
	{CodeDeadDecl, "declaration never referenced", SeverityWarning},
	{CodeVacuous, "vacuously true formula", SeverityWarning},
	{CodeUnboundVar, "unbound event or thread variable", SeverityError},
	{CodeContradiction, "statically unsatisfiable restriction set (no legal computation exists)", SeverityError},
	{CodeDeadlock, "cyclic wait among prerequisites across thread chains", SeverityWarning},
	{CodeUnreachable, "event class no legal enable chain can produce", SeverityError},
	{CodeRedundant, "restriction subsumed by another restriction", SeverityWarning},
	{CodeChanNoPartner, "channel operation with no possible partner", SeverityError},
	{CodeLockInversion, "mutexes acquired in opposite orders by different goroutines", SeverityWarning},
	{CodeBlockForever, "goroutine that can block forever (static partial deadlock)", SeverityWarning},
	{CodeDoubleLock, "second acquisition of a non-reentrant mutex already held", SeverityError},
	{CodeSatRefuted, "solution computation refuted by its problem specification", SeverityError},
	{CodeDataRace, "conflicting shared-variable accesses with no ordering and no common lock", SeverityError},
	{CodeCloseRace, "channel close concurrent with a send on the same channel", SeverityError},
	{CodeAddWaitRace, "WaitGroup.Add concurrent with Wait on the same WaitGroup", SeverityWarning},
}

// Registry returns the shared code table, ordered by code. The returned
// slice must not be modified.
func Registry() []CodeInfo { return registry }

// Info returns the registry row for a code.
func Info(c Code) (CodeInfo, bool) {
	for _, ci := range registry {
		if ci.Code == c {
			return ci, true
		}
	}
	return CodeInfo{}, false
}

// PrintRegistry writes the code table in a fixed-width text layout — the
// output of the -codes flag both gemlint and gemgo expose.
func PrintRegistry(w io.Writer) {
	for _, ci := range registry {
		fmt.Fprintf(w, "%s  %-7s  %s\n", ci.Code, ci.Severity, ci.Summary)
	}
}
