package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files from current lint output")

// TestGolden runs the linter over every defective spec in testdata/ and
// compares the rendered diagnostics against the sibling .golden file.
// Regenerate with: go test ./internal/lint -run Golden -update
func TestGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.gem"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) < 8 {
		t.Fatalf("expected at least 8 fixtures in testdata/, found %d", len(fixtures))
	}
	for _, path := range fixtures {
		name := strings.TrimSuffix(filepath.Base(path), ".gem")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := lint.AnalyzeSource(string(src))
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			var sb strings.Builder
			lint.Print(&sb, filepath.Base(path), res.Diags)
			got := sb.String()

			// Every fixture is named after the code it must surface.
			wantCode := strings.ToUpper(name[:strings.Index(name, "_")])
			if !strings.Contains(got, wantCode) {
				t.Errorf("fixture %s did not surface %s; diagnostics:\n%s", path, wantCode, got)
			}

			goldenPath := strings.TrimSuffix(path, ".gem") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
