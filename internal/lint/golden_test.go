package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem/internal/analyze"
	"gem/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files from current lint output")

// deepFixture reports whether the fixture exercises the deep analyzer:
// the GEM009–GEM012 defect specs and every clean_* lookalike (which must
// stay clean under the deep analyses, not just the shallow ones).
func deepFixture(name string) bool {
	if strings.HasPrefix(name, "clean_") {
		return true
	}
	switch name[:strings.Index(name, "_")] {
	case "gem009", "gem010", "gem011", "gem012":
		return true
	}
	return false
}

// fixtureDiags runs the analysis a fixture is named for and returns the
// rendered diagnostics.
func fixtureDiags(t *testing.T, path string) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), ".gem")
	var diags []lint.Diagnostic
	if deepFixture(name) {
		res, err := analyze.AnalyzeSource(string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		diags = res.All()
	} else {
		res, err := lint.AnalyzeSource(string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		diags = res.Diags
	}
	var sb strings.Builder
	lint.Print(&sb, filepath.Base(path), diags)
	return sb.String()
}

// TestGolden runs the linter over every spec in testdata/ and compares
// the rendered diagnostics against the sibling .golden file. Defective
// fixtures (gemNNN_*) must surface the code they are named for; clean_*
// fixtures superficially resemble a deep defect and must produce no
// diagnostics at all. Regenerate with:
// go test ./internal/lint -run Golden -update
func TestGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.gem"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) < 16 {
		t.Fatalf("expected at least 16 fixtures in testdata/, found %d", len(fixtures))
	}
	for _, path := range fixtures {
		name := strings.TrimSuffix(filepath.Base(path), ".gem")
		t.Run(name, func(t *testing.T) {
			got := fixtureDiags(t, path)

			if strings.HasPrefix(name, "clean_") {
				if got != "" {
					t.Errorf("clean fixture %s produced diagnostics:\n%s", path, got)
				}
			} else {
				// Every defective fixture is named after the code it must
				// surface.
				wantCode := strings.ToUpper(name[:strings.Index(name, "_")])
				if !strings.Contains(got, wantCode) {
					t.Errorf("fixture %s did not surface %s; diagnostics:\n%s", path, wantCode, got)
				}
			}

			goldenPath := strings.TrimSuffix(path, ".gem") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
