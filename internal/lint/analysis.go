package lint

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/spec"
)

// analysis carries the shared state of one Analyze run.
type analysis struct {
	s        *spec.Spec
	marks    *gemlang.SourceMap
	universe *core.Universe // nil when the group structure is invalid
	res      *Result
	seen     map[string]bool // diagnostic dedupe: code+subject+message

	// Usage records for the dead-declaration analysis.
	usedRefs     []core.ClassRef
	usedElements map[string]bool // element-wide references (@, class-less ports)
}

func (a *analysis) add(d Diagnostic) {
	key := string(d.Code) + "\x00" + d.Subject + "\x00" + d.Message
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.res.Diags = append(a.res.Diags, d)
}

func (a *analysis) errAt(pos Pos, code Code, subject, format string, args ...any) {
	a.add(Diagnostic{Code: code, Severity: SeverityError, Subject: subject,
		Message: fmt.Sprintf(format, args...), Pos: pos})
}

func (a *analysis) warnAt(pos Pos, code Code, subject, format string, args ...any) {
	a.add(Diagnostic{Code: code, Severity: SeverityWarning, Subject: subject,
		Message: fmt.Sprintf(format, args...), Pos: pos})
}

// Position lookup kinds for posOf.
const (
	inElement = iota
	inGroup
	inThread
	inRestriction
)

func (a *analysis) posOf(kind int, name string) Pos {
	if a.marks == nil {
		return Pos{}
	}
	var m map[string]gemlang.Pos
	switch kind {
	case inElement:
		m = a.marks.Elements
	case inGroup:
		m = a.marks.Groups
	case inThread:
		m = a.marks.Threads
	case inRestriction:
		m = a.marks.Restrictions
	}
	if p, ok := m[name]; ok {
		return Pos{Line: p.Line, Col: p.Col}
	}
	return Pos{}
}

func restrictionSubject(owner, name string) string {
	return fmt.Sprintf("restriction %q of %s", name, owner)
}

// markUsed records that a class reference appears somewhere meaningful
// (restriction, port, thread path) for the dead-declaration analysis.
func (a *analysis) markUsed(ref core.ClassRef) {
	a.usedRefs = append(a.usedRefs, ref)
}

func (a *analysis) markElementUsed(name string) {
	if a.usedElements == nil {
		a.usedElements = make(map[string]bool)
	}
	a.usedElements[name] = true
}

// checkRef validates a class reference against the declarations and
// records it as used. It returns false when the reference dangles.
func (a *analysis) checkRef(pos Pos, subject string, ref core.ClassRef) bool {
	a.markUsed(ref)
	if ref.Element != "" {
		d, ok := a.s.Element(ref.Element)
		if !ok {
			a.errAt(pos, CodeDanglingElement, subject,
				"reference to undeclared element %q", ref.Element)
			return false
		}
		if ref.Class != "" {
			if _, ok := d.EventDecl(ref.Class); !ok {
				a.errAt(pos, CodeDanglingClass, subject,
					"element %q declares no event class %q", ref.Element, ref.Class)
				return false
			}
		}
		return true
	}
	if ref.Class == "" {
		return true // the empty reference matches everything
	}
	if len(a.declaringElements(ref.Class)) == 0 {
		a.errAt(pos, CodeDanglingClass, subject,
			"no element declares event class %q", ref.Class)
		return false
	}
	return true
}

// declaringElements returns the declared elements that carry the named
// event class, in sorted order.
func (a *analysis) declaringElements(class string) []string {
	var out []string
	for _, name := range a.s.ElementNames() {
		d, _ := a.s.Element(name)
		if _, ok := d.EventDecl(class); ok {
			out = append(out, name)
		}
	}
	return out
}

// resolveElems resolves a class reference to the candidate element names
// it may denote events of. Empty when the reference dangles.
func (a *analysis) resolveElems(ref core.ClassRef) []string {
	if ref.Element != "" {
		d, ok := a.s.Element(ref.Element)
		if !ok {
			return nil
		}
		if ref.Class != "" {
			if _, ok := d.EventDecl(ref.Class); !ok {
				return nil
			}
		}
		return []string{ref.Element}
	}
	if ref.Class == "" {
		return a.s.ElementNames()
	}
	return a.declaringElements(ref.Class)
}

// checkStructure validates the declaration skeleton: group members and
// ports, and thread path references (GEM001/GEM002).
func (a *analysis) checkStructure() {
	structural := false
	for _, gname := range a.s.GroupNames() {
		g, _ := a.s.Group(gname)
		pos := a.posOf(inGroup, gname)
		subject := "group " + gname
		for _, m := range g.Members {
			if _, ok := a.s.Element(m); ok {
				continue
			}
			if _, ok := a.s.Group(m); ok {
				continue
			}
			a.errAt(pos, CodeDanglingElement, subject,
				"member %q is not a declared element or group", m)
			structural = true
		}
		for _, p := range g.Ports {
			d, ok := a.s.Element(p.Element)
			if !ok {
				a.errAt(pos, CodeDanglingElement, subject,
					"port references undeclared element %q", p.Element)
				structural = true
				continue
			}
			if p.Class == "" {
				a.markElementUsed(p.Element)
				continue
			}
			if _, ok := d.EventDecl(p.Class); !ok {
				a.errAt(pos, CodeDanglingClass, subject,
					"port references undeclared event class %s.%s", p.Element, p.Class)
				structural = true
				continue
			}
			a.markUsed(core.Ref(p.Element, p.Class))
		}
	}
	// Containment/shape errors the member and port checks above cannot
	// see (a port for a non-contained element, a membership cycle).
	if a.universe == nil && !structural {
		if _, err := a.s.Universe(); err != nil {
			a.errAt(Pos{}, CodeDanglingElement, "group structure", "%s", err.Error())
		}
	}
	for _, tt := range a.s.Threads() {
		pos := a.posOf(inThread, tt.Name)
		subject := "thread " + tt.Name
		for _, ref := range tt.Path {
			a.checkRef(pos, subject, ref)
		}
	}
}
