package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// FileDiagnostic pairs a diagnostic with the file it was found in (empty
// when the source had no file, e.g. stdin).
type FileDiagnostic struct {
	File string `json:"file,omitempty"`
	Diagnostic
}

// SortFileDiagnostics orders diagnostics file-major, then by the
// canonical per-file order (position with unknown last, code, subject) —
// the deterministic presentation every front end promises.
func SortFileDiagnostics(ds []FileDiagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		pi, pj := ds[i].Pos, ds[j].Pos
		if pi.IsZero() != pj.IsZero() {
			return !pi.IsZero()
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Col != pj.Col {
			return pi.Col < pj.Col
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Subject < ds[j].Subject
	})
}

// The SARIF 2.1.0 subset gemlint emits. Field order follows the struct
// declarations, so output is byte-stable for a given diagnostic slice.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log with one run,
// attributed to gemlint. Only the rules that actually fired are listed,
// sorted by id; results keep the input order (callers sort with
// SortDiagnostics first).
func WriteSARIF(w io.Writer, diags []FileDiagnostic) error {
	return WriteSARIFAs(w, "gemlint", diags)
}

// WriteSARIFAs is WriteSARIF with an explicit tool name in the driver
// block — gemgo emits the same log format under its own name. Rule
// descriptions come from the shared code registry.
func WriteSARIFAs(w io.Writer, tool string, diags []FileDiagnostic) error {
	fired := map[Code]bool{}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		fired[d.Code] = true
		level := "warning"
		if d.Severity == SeverityError {
			level = "error"
		}
		r := sarifResult{
			RuleID:  string(d.Code),
			Level:   level,
			Message: sarifMessage{Text: d.Subject + ": " + d.Message},
		}
		if d.File != "" {
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: d.File}}
			// SARIF 2.1.0 line/column numbers are 1-based; a diagnostic
			// with no source position (Pos.IsZero) must omit the region
			// entirely rather than emit "startLine": 0, and a known line
			// with an unknown column omits just the column.
			if d.Pos.Line >= 1 {
				region := &sarifRegion{StartLine: d.Pos.Line}
				if d.Pos.Col >= 1 {
					region.StartColumn = d.Pos.Col
				}
				phys.Region = region
			}
			r.Locations = []sarifLocation{{PhysicalLocation: phys}}
		}
		results = append(results, r)
	}
	rules := make([]sarifRule, 0, len(fired))
	for code := range fired {
		info, _ := Info(code)
		rules = append(rules, sarifRule{
			ID:               string(code),
			ShortDescription: sarifMessage{Text: info.Summary},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           tool,
				InformationURI: "https://example.invalid/gem",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
