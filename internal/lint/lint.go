// Package lint implements gemlint, the static well-formedness and
// consistency analyzer for GEM specifications. It checks properties of a
// specification σ that the paper (Sections 3, 4, 6 and 8.2) fixes
// statically — declaration consistency, satisfiability of the
// prerequisite structure, access legality of required enable edges — and
// reports them as structured diagnostics with stable codes, without
// enumerating a single history. The legality checker uses the same
// analysis as a cheap pre-pass (legal.Options.Prelint) to short-circuit
// restrictions that can be refuted without the exponential lattice
// enumeration.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"gem/internal/gemlang"
	"gem/internal/obs"
	"gem/internal/spec"
)

// Code is a stable diagnostic code. Codes are append-only: a code keeps
// its meaning forever so tooling may filter on it.
type Code string

// The diagnostic codes.
const (
	// CodeDanglingElement: a restriction, thread path, group member, or
	// port references an element that is not declared.
	CodeDanglingElement Code = "GEM001"
	// CodeDanglingClass: a reference names an event class no element
	// declares (or the referenced element does not declare it).
	CodeDanglingClass Code = "GEM002"
	// CodeDanglingParam: a formula reads an event parameter the event's
	// class does not declare.
	CodeDanglingParam Code = "GEM003"
	// CodePrereqCycle: the prerequisite graph induced by the Section 8.2
	// abbreviations is unsatisfiable — some event class can never have a
	// legally enabled event (a cycle, or a chain with no well-founded
	// start).
	CodePrereqCycle Code = "GEM004"
	// CodeAccessForbidden: a restriction requires an enable edge that the
	// Section 4 group/port access relation forbids, so every computation
	// satisfying the restriction contains an IllegalEnable.
	CodeAccessForbidden Code = "GEM005"
	// CodeDeadDecl: an event class (or an element) is declared but never
	// referenced by any restriction, port, or thread path.
	CodeDeadDecl Code = "GEM006"
	// CodeVacuous: a formula is vacuously true — an implication whose
	// antecedent can never hold, or a thread quantifier over an
	// undeclared thread type.
	CodeVacuous Code = "GEM007"
	// CodeUnboundVar: a formula uses an event or thread variable that no
	// enclosing quantifier binds (dynamic evaluation would panic).
	CodeUnboundVar Code = "GEM008"

	// The deep-analysis codes below are produced by internal/analyze
	// (gemlint -deep), which reasons about *interactions between*
	// restrictions over the abstract enable graph, rather than about one
	// restriction in isolation.

	// CodeContradiction: the restriction set is statically unsatisfiable —
	// one restriction demands an event of a class the other restrictions
	// exclude from every legal computation, so no computation satisfies
	// the specification and all verification against it is vacuous.
	CodeContradiction Code = "GEM009"
	// CodeDeadlock: a cyclic wait among prerequisites/JOINs across thread
	// chains — following each class's required enabler and each thread
	// path's stage order leads back to the starting class.
	CodeDeadlock Code = "GEM010"
	// CodeUnreachable: an event class no legal enable chain can reach:
	// its required enablers are themselves unproducible (transitively, via
	// the access relation), even though each constraint looks fine in
	// isolation.
	CodeUnreachable Code = "GEM011"
	// CodeRedundant: a restriction that is subsumed by another — a
	// structurally identical formula, or a prerequisite constraint
	// re-stating one another restriction already imposes.
	CodeRedundant Code = "GEM012"
)

// Severity ranks diagnostics.
type Severity int

// The severities, in increasing order.
const (
	SeverityWarning Severity = iota + 1
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Pos is a 1-based source position; the zero Pos means "unknown"
// (diagnostics from a programmatically built Spec have no positions).
type Pos struct {
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
}

// IsZero reports whether the position is unknown.
func (p Pos) IsZero() bool { return p.Line == 0 }

// Diagnostic is one lint finding.
type Diagnostic struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	// Subject names the offending construct, e.g. `restriction "r" of
	// buf` or `element db.data`.
	Subject string `json:"subject"`
	Message string `json:"message"`
	Pos     Pos    `json:"pos,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s %s: %s: %s", d.Code, d.Severity, d.Subject, d.Message)
	if !d.Pos.IsZero() {
		s = fmt.Sprintf("%d:%d: %s", d.Pos.Line, d.Pos.Col, s)
	}
	return s
}

// Result is the outcome of analyzing one specification.
type Result struct {
	Diags []Diagnostic
	// Constraints are the enable-edge constraints extracted from the
	// restriction formulae (the prerequisite structure), including the
	// ones the analyses proved unsatisfiable.
	Constraints []EnableConstraint
}

// Errors returns the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic { return r.bySeverity(SeverityError) }

// Warnings returns the warning-severity diagnostics.
func (r *Result) Warnings() []Diagnostic { return r.bySeverity(SeverityWarning) }

func (r *Result) bySeverity(s Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// Doomed returns the constraints the analysis proved statically
// unsatisfiable (GEM004/GEM005): any computation containing an event of
// the target class without a matching source enabler violates the owning
// restriction.
func (r *Result) Doomed() []EnableConstraint {
	var out []EnableConstraint
	for _, c := range r.Constraints {
		if c.Doomed {
			out = append(out, c)
		}
	}
	return out
}

// Analyze runs every analysis over the specification IR. Diagnostics
// carry no positions; use AnalyzeSource for position-annotated output.
func Analyze(s *spec.Spec) *Result { return analyze(s, nil) }

// AnalyzeSource parses GEM source and analyzes it, attaching source
// positions to the diagnostics. A parse error is returned as-is (lint
// requires a syntactically valid specification).
func AnalyzeSource(src string) (*Result, error) {
	s, marks, err := gemlang.ParseWithPositions(src)
	if err != nil {
		return nil, err
	}
	return analyze(s, marks), nil
}

// AnalyzeMarked analyzes an already-parsed specification, attaching
// source positions from the given map (which may be nil). It is the
// entry point for downstream analyses — internal/analyze — that need
// the extracted constraints and positioned diagnostics for an IR they
// already hold.
func AnalyzeMarked(s *spec.Spec, marks *gemlang.SourceMap) *Result {
	return analyze(s, marks)
}

// PosOf resolves the source position recorded for a named construct of
// the given kind ("element", "group", "thread" or "restriction").
// Returns the zero Pos when the map is nil or has no entry. Exposed so
// downstream analyzers position their diagnostics identically to lint.
func PosOf(marks *gemlang.SourceMap, kind, name string) Pos {
	a := analysis{marks: marks}
	switch kind {
	case "element":
		return a.posOf(inElement, name)
	case "group":
		return a.posOf(inGroup, name)
	case "thread":
		return a.posOf(inThread, name)
	case "restriction":
		return a.posOf(inRestriction, name)
	}
	return Pos{}
}

// SortDiagnostics orders diagnostics by position (unknown positions
// last), then code, then subject — the canonical stable order every
// producer of diagnostics uses.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := ds[i].Pos, ds[j].Pos
		if pi.IsZero() != pj.IsZero() {
			return !pi.IsZero()
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Col != pj.Col {
			return pi.Col < pj.Col
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Subject < ds[j].Subject
	})
}

var specCache sync.Map // *spec.Spec -> *Result

// ForSpec memoizes Analyze per Spec value; the legality checker calls it
// once per computation checked, so the analysis must be free after the
// first call.
func ForSpec(s *spec.Spec) *Result {
	if r, ok := specCache.Load(s); ok {
		return r.(*Result)
	}
	r := Analyze(s)
	specCache.Store(s, r)
	return r
}

func analyze(s *spec.Spec, marks *gemlang.SourceMap) *Result {
	_, sp := obs.StartSpan(nil, "lint.analyze")
	defer sp.End()
	a := &analysis{s: s, marks: marks, res: &Result{}, seen: make(map[string]bool)}
	a.universe, _ = s.Universe()
	a.checkStructure()
	a.checkRestrictions()
	a.checkConstraints()
	a.checkDead()
	a.sortDiags()
	return a.res
}

// sortDiags orders diagnostics canonically (see SortDiagnostics).
func (a *analysis) sortDiags() { SortDiagnostics(a.res.Diags) }

// Print writes the diagnostics in the canonical one-line-per-finding
// text format, prefixing each line with the file name when non-empty.
func Print(w io.Writer, file string, diags []Diagnostic) {
	for _, d := range diags {
		if file != "" {
			fmt.Fprintf(w, "%s:%s\n", file, d)
		} else {
			fmt.Fprintln(w, d.String())
		}
	}
}
