package lint

import (
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/order"
)

// EnableConstraint is a required-enable-edge constraint extracted from a
// restriction: every event of Target must be enabled by exactly one event
// drawn from Sources. PREREQ / FORK / JOIN produce single-source
// constraints; NDPREREQ produces a choice set. The shape is recognized
// structurally (a ForAll whose body conjoins an ExistsUnique(-In) over
// the sources with an Enables atom linking the two variables), so
// hand-written equivalents of the Section 8.2 abbreviations are found
// too.
type EnableConstraint struct {
	Owner       string
	Restriction string
	Sources     []core.ClassRef
	Target      core.ClassRef
	// Doomed marks constraints the analysis proved statically
	// unsatisfiable, with the code and reason of the proof.
	Doomed bool
	Code   Code
	Reason string
}

func (ec EnableConstraint) String() string {
	return fmt.Sprintf("%s -> %s", refsString(ec.Sources), ec.Target)
}

// MissingEnabler returns an event of the computation that matches Target
// but has no direct enabler matching any Source — a witness that the
// owning restriction's exactly-one-enabler conjunct fails on this
// computation — or nil when every target event is properly enabled (or
// none exists). This is the activation test the legality checker's
// Prelint pre-pass uses: it re-derives, in O(events²) instead of via the
// history lattice, exactly the verdict the dynamic check would reach for
// a doomed constraint.
func (ec EnableConstraint) MissingEnabler(c *core.Computation) *core.Event {
	for _, e := range c.Events() {
		if !ec.Target.Matches(e) {
			continue
		}
		enabled := false
		for _, pid := range c.Enablers(e.ID) {
			p := c.Event(pid)
			for _, src := range ec.Sources {
				if src.Matches(p) {
					enabled = true
					break
				}
			}
			if enabled {
				break
			}
		}
		if !enabled {
			return e
		}
	}
	return nil
}

// conjuncts applies fn to every conjunct of f, descending through And
// and Box — the positive contexts in which a constraint must hold
// whenever the formula does.
func conjuncts(f logic.Formula, fn func(logic.Formula)) {
	switch g := f.(type) {
	case logic.And:
		for _, sub := range g {
			conjuncts(sub, fn)
		}
	case logic.Box:
		conjuncts(g.F, fn)
	default:
		fn(f)
	}
}

// extractConstraints recognizes the prerequisite shapes in one
// restriction formula.
func extractConstraints(owner, name string, f logic.Formula) []EnableConstraint {
	var out []EnableConstraint
	conjuncts(f, func(node logic.Formula) {
		fa, ok := node.(logic.ForAll)
		if !ok {
			return
		}
		conjuncts(fa.Body, func(inner logic.Formula) {
			switch q := inner.(type) {
			case logic.ExistsUnique:
				if enablesIn(q.Body, q.Var, fa.Var) {
					out = append(out, EnableConstraint{
						Owner: owner, Restriction: name,
						Sources: []core.ClassRef{q.Ref}, Target: fa.Ref,
					})
				}
			case logic.ExistsUniqueIn:
				if enablesIn(q.Body, q.Var, fa.Var) {
					out = append(out, EnableConstraint{
						Owner: owner, Restriction: name,
						Sources: append([]core.ClassRef(nil), q.Refs...), Target: fa.Ref,
					})
				}
			}
		})
	})
	return out
}

// enablesIn reports whether the formula conjoins src |> dst.
func enablesIn(f logic.Formula, src, dst string) bool {
	found := false
	conjuncts(f, func(node logic.Formula) {
		if e, ok := node.(logic.Enables); ok && e.X == src && e.Y == dst {
			found = true
		}
	})
	return found
}

// checkConstraints extracts the prerequisite structure and runs the
// satisfiability analyses over it: GEM004 (cycles / no well-founded
// start) and GEM005 (access-forbidden edges).
func (a *analysis) checkConstraints() {
	var cs []EnableConstraint
	for _, r := range a.s.Restrictions() {
		cs = append(cs, extractConstraints(r.Owner, r.Name, r.F)...)
	}
	// Constraints with dangling references are excluded from the graph
	// analyses: their defect is already reported as GEM001/GEM002, and
	// their empty domains make them vacuous, not unsatisfiable.
	valid := make([]bool, len(cs))
	for i, c := range cs {
		ok := len(a.resolveElems(c.Target)) > 0
		for _, s := range c.Sources {
			ok = ok && len(a.resolveElems(s)) > 0
		}
		valid[i] = ok
	}

	a.checkCycles(cs, valid)
	a.checkAccess(cs, valid)
	a.res.Constraints = cs
}

// checkCycles decides which constraint targets are supportable: an event
// class is supportable when every constraint targeting it can draw an
// enabler from a supportable class, well-foundedly. The mandatory
// (single-source) edges form a graph whose acyclicity is decided with
// the order.DAG machinery; choice sets are handled by a least-fixpoint
// supportability computation. Unsupportable targets can have no event in
// any legal computation, so every constraint targeting them is doomed
// (GEM004).
func (a *analysis) checkCycles(cs []EnableConstraint, valid []bool) {
	nodeIdx := make(map[string]int)
	var nodes []string
	idOf := func(ref core.ClassRef) int {
		k := ref.String()
		if i, ok := nodeIdx[k]; ok {
			return i
		}
		nodeIdx[k] = len(nodes)
		nodes = append(nodes, k)
		return len(nodes) - 1
	}
	var edges []conEdge
	hasChoice := false
	for i, c := range cs {
		if !valid[i] {
			continue
		}
		e := conEdge{target: idOf(c.Target), ci: i}
		for _, s := range c.Sources {
			e.sources = append(e.sources, idOf(s))
		}
		if len(e.sources) > 1 {
			hasChoice = true
		}
		edges = append(edges, e)
	}
	if len(edges) == 0 {
		return
	}

	// Fast path: with mandatory edges only, satisfiability is exactly
	// acyclicity of the source→target graph.
	dag := order.NewDAG(len(nodes))
	for _, e := range edges {
		if len(e.sources) == 1 {
			dag.AddEdge(e.sources[0], e.target)
		}
	}
	if _, err := dag.TopoSort(); err == nil && !hasChoice {
		return
	}

	// General case: least fixpoint of supportability. Non-target classes
	// are supportable outright (their events need no enabler under these
	// constraints); a target becomes supportable when each constraint
	// targeting it has a supportable source.
	isTarget := make([]bool, len(nodes))
	for _, e := range edges {
		isTarget[e.target] = true
	}
	supportable := make([]bool, len(nodes))
	for v := range nodes {
		supportable[v] = !isTarget[v]
	}
	for changed := true; changed; {
		changed = false
		for v := range nodes {
			if supportable[v] {
				continue
			}
			ok := true
			for _, e := range edges {
				if e.target != v {
					continue
				}
				some := false
				for _, s := range e.sources {
					if supportable[s] {
						some = true
						break
					}
				}
				if !some {
					ok = false
					break
				}
			}
			if ok {
				supportable[v] = true
				changed = true
			}
		}
	}

	// Every constraint targeting an unsupportable class is doomed; the
	// diagnostic is reported once per (restriction, target).
	for k := range edges {
		e := edges[k]
		if supportable[e.target] {
			continue
		}
		c := &cs[e.ci]
		c.Doomed = true
		c.Code = CodePrereqCycle
		c.Reason = fmt.Sprintf("no event of %s can ever be legally enabled: %s",
			nodes[e.target], cycleString(nodes, edges, supportable, e.target))
		a.errAt(a.posOf(inRestriction, c.Restriction), CodePrereqCycle,
			restrictionSubject(c.Owner, c.Restriction), "%s", c.Reason)
	}
}

// conEdge is one constraint lowered onto the node indices of the
// supportability graph.
type conEdge struct {
	target  int
	sources []int
	ci      int // constraint index
}

// cycleString walks the unsupportable subgraph from start, at each step
// following some constraint all of whose sources are unsupportable,
// until a class repeats — producing the concrete requires-chain shown to
// the user, e.g. "a.Go requires prior b.Go requires prior a.Go".
func cycleString(nodes []string, edges []conEdge, supportable []bool, start int) string {
	path := []int{start}
	onPath := map[int]bool{start: true}
	cur := start
	for range nodes {
		next := -1
		for _, e := range edges {
			if e.target != cur {
				continue
			}
			all := true
			for _, s := range e.sources {
				if supportable[s] {
					all = false
					break
				}
			}
			if all && len(e.sources) > 0 {
				next = e.sources[0]
				break
			}
		}
		if next < 0 {
			break
		}
		path = append(path, next)
		if onPath[next] {
			break
		}
		onPath[next] = true
		cur = next
	}
	parts := make([]string, len(path))
	for i, v := range path {
		parts[i] = nodes[v]
	}
	return strings.Join(parts, " requires prior ")
}

// checkAccess flags constraints whose every required enable edge is
// forbidden by the group/port access relation (GEM005): any computation
// exercising the constraint either violates it or contains an
// IllegalEnable.
func (a *analysis) checkAccess(cs []EnableConstraint, valid []bool) {
	if a.universe == nil {
		return
	}
	for i := range cs {
		c := &cs[i]
		if !valid[i] || c.Doomed {
			continue
		}
		possible := false
		for _, s := range c.Sources {
			if a.enablePossible(s, c.Target) {
				possible = true
				break
			}
		}
		if possible {
			continue
		}
		c.Doomed = true
		c.Code = CodeAccessForbidden
		c.Reason = fmt.Sprintf(
			"requires %s to enable %s, but the group access relation forbids every such edge",
			refsString(c.Sources), c.Target)
		a.errAt(a.posOf(inRestriction, c.Restriction), CodeAccessForbidden,
			restrictionSubject(c.Owner, c.Restriction), "%s", c.Reason)
	}
}

// checkDead reports declarations nothing references (GEM006): an event
// class is live when a restriction formula, a port, or a thread path
// mentions it (directly, or element-wide via `@` / a class-less port).
func (a *analysis) checkDead() {
	for _, name := range a.s.ElementNames() {
		d, _ := a.s.Element(name)
		pos := a.posOf(inElement, name)
		if len(d.Events) == 0 {
			if !a.elementLive(name) {
				a.warnAt(pos, CodeDeadDecl, "element "+name,
					"element declares no event classes and is never referenced")
			}
			continue
		}
		var dead []string
		for _, ec := range d.Events {
			if !a.classLive(name, ec.Name) {
				dead = append(dead, ec.Name)
			}
		}
		sort.Strings(dead)
		for _, class := range dead {
			a.warnAt(pos, CodeDeadDecl, "element "+name,
				"event class %s.%s is never referenced by any restriction, port, or thread path",
				name, class)
		}
	}
}

func (a *analysis) elementLive(name string) bool {
	if a.usedElements[name] {
		return true
	}
	for _, ref := range a.usedRefs {
		if ref.Element == name {
			return true
		}
	}
	return false
}

func (a *analysis) classLive(elem, class string) bool {
	if a.usedElements[elem] {
		return true
	}
	for _, ref := range a.usedRefs {
		if ref.Class != class {
			continue
		}
		if ref.Element == "" || ref.Element == elem {
			return true
		}
	}
	return false
}
