package lint

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
)

// binders tracks quantifier bindings while walking a restriction formula.
// An event variable may be bound over the union of several classes
// (ExistsUniqueIn / ForAllIn), hence the slice.
type binders struct {
	events  map[string][]core.ClassRef
	threads map[string]string // thread variable -> thread type
}

func (b binders) bindEvent(v string, refs ...core.ClassRef) binders {
	ev := make(map[string][]core.ClassRef, len(b.events)+1)
	for k, r := range b.events {
		ev[k] = r
	}
	ev[v] = refs
	return binders{events: ev, threads: b.threads}
}

func (b binders) bindThread(v, tt string) binders {
	th := make(map[string]string, len(b.threads)+1)
	for k, t := range b.threads {
		th[k] = t
	}
	th[v] = tt
	return binders{events: b.events, threads: th}
}

// checkRestrictions walks every restriction formula, validating class and
// parameter references (GEM001/002/003), variable bindings (GEM008),
// thread quantifier domains and implication antecedents (GEM007).
func (a *analysis) checkRestrictions() {
	for _, r := range a.s.Restrictions() {
		pos := a.posOf(inRestriction, r.Name)
		subject := restrictionSubject(r.Owner, r.Name)
		a.walk(r.F, binders{}, pos, subject)
	}
}

func (a *analysis) walk(f logic.Formula, env binders, pos Pos, subject string) {
	switch g := f.(type) {
	case logic.TrueF, logic.FalseF:
	case logic.Occurred:
		a.useEventVar(env, g.Var, pos, subject)
	case logic.New:
		a.useEventVar(env, g.Var, pos, subject)
	case logic.Potential:
		a.useEventVar(env, g.Var, pos, subject)
	case logic.AtElement:
		a.useEventVar(env, g.Var, pos, subject)
		if _, ok := a.s.Element(g.Element); !ok {
			a.errAt(pos, CodeDanglingElement, subject,
				"reference to undeclared element %q", g.Element)
		} else {
			a.markElementUsed(g.Element)
		}
	case logic.InClass:
		a.useEventVar(env, g.Var, pos, subject)
		a.checkRef(pos, subject, g.Ref)
	case logic.AtControl:
		a.useEventVar(env, g.Var, pos, subject)
		a.checkRef(pos, subject, g.Ref)
	case logic.Enables:
		a.useEventVar(env, g.X, pos, subject)
		a.useEventVar(env, g.Y, pos, subject)
	case logic.ElemOrdered:
		a.useEventVar(env, g.X, pos, subject)
		a.useEventVar(env, g.Y, pos, subject)
	case logic.Precedes:
		a.useEventVar(env, g.X, pos, subject)
		a.useEventVar(env, g.Y, pos, subject)
	case logic.ConcurrentWith:
		a.useEventVar(env, g.X, pos, subject)
		a.useEventVar(env, g.Y, pos, subject)
	case logic.SameEvent:
		a.useEventVar(env, g.X, pos, subject)
		a.useEventVar(env, g.Y, pos, subject)
	case logic.ParamCmp:
		a.useParam(env, g.X, g.P, pos, subject)
		a.useParam(env, g.Y, g.Q, pos, subject)
	case logic.ParamConst:
		a.useParam(env, g.X, g.P, pos, subject)
	case logic.OnThread:
		a.useEventVar(env, g.X, pos, subject)
		a.useThreadVar(env, g.T, pos, subject)
	case logic.ThreadsDistinct:
		a.useThreadVar(env, g.T1, pos, subject)
		a.useThreadVar(env, g.T2, pos, subject)
	case logic.CountDiff:
		a.checkRef(pos, subject, g.A)
		a.checkRef(pos, subject, g.B)
	case logic.FIFOValues:
		if a.checkRef(pos, subject, g.A) {
			a.checkRefParam(g.A, g.PA, pos, subject)
		}
		if a.checkRef(pos, subject, g.B) {
			a.checkRefParam(g.B, g.PB, pos, subject)
		}
	case logic.Not:
		a.walk(g.F, env, pos, subject)
	case logic.And:
		for _, sub := range g {
			a.walk(sub, env, pos, subject)
		}
	case logic.Or:
		for _, sub := range g {
			a.walk(sub, env, pos, subject)
		}
	case logic.Implies:
		if reason := a.unsat(g.If, env); reason != "" {
			a.warnAt(pos, CodeVacuous, subject,
				"implication is vacuously true: %s", reason)
		}
		a.walk(g.If, env, pos, subject)
		a.walk(g.Then, env, pos, subject)
	case logic.Iff:
		a.walk(g.A, env, pos, subject)
		a.walk(g.B, env, pos, subject)
	case logic.Box:
		a.walk(g.F, env, pos, subject)
	case logic.Diamond:
		a.walk(g.F, env, pos, subject)
	case logic.ForAll:
		a.checkRef(pos, subject, g.Ref)
		a.walk(g.Body, env.bindEvent(g.Var, g.Ref), pos, subject)
	case logic.Exists:
		a.checkRef(pos, subject, g.Ref)
		a.walk(g.Body, env.bindEvent(g.Var, g.Ref), pos, subject)
	case logic.ExistsUnique:
		a.checkRef(pos, subject, g.Ref)
		a.walk(g.Body, env.bindEvent(g.Var, g.Ref), pos, subject)
	case logic.AtMostOne:
		a.checkRef(pos, subject, g.Ref)
		a.walk(g.Body, env.bindEvent(g.Var, g.Ref), pos, subject)
	case logic.ForAllIn:
		for _, ref := range g.Refs {
			a.checkRef(pos, subject, ref)
		}
		a.walk(g.Body, env.bindEvent(g.Var, g.Refs...), pos, subject)
	case logic.ExistsUniqueIn:
		for _, ref := range g.Refs {
			a.checkRef(pos, subject, ref)
		}
		a.walk(g.Body, env.bindEvent(g.Var, g.Refs...), pos, subject)
	case logic.ForAllThread:
		a.checkThreadType(g.Type, pos, subject)
		a.walk(g.Body, env.bindThread(g.Var, g.Type), pos, subject)
	case logic.ExistsThread:
		a.checkThreadType(g.Type, pos, subject)
		a.walk(g.Body, env.bindThread(g.Var, g.Type), pos, subject)
	default:
		// Unknown formula node (a future extension): nothing to check.
	}
}

func (a *analysis) useEventVar(env binders, v string, pos Pos, subject string) {
	if _, ok := env.events[v]; ok {
		return
	}
	if _, ok := env.threads[v]; ok {
		a.errAt(pos, CodeUnboundVar, subject,
			"%q is a thread variable used where an event variable is required", v)
		return
	}
	a.errAt(pos, CodeUnboundVar, subject,
		"event variable %q is not bound by any enclosing quantifier", v)
}

func (a *analysis) useThreadVar(env binders, v string, pos Pos, subject string) {
	if _, ok := env.threads[v]; ok {
		return
	}
	a.errAt(pos, CodeUnboundVar, subject,
		"thread variable %q is not bound by any enclosing thread quantifier", v)
}

func (a *analysis) checkThreadType(tt string, pos Pos, subject string) {
	for _, t := range a.s.Threads() {
		if t.Name == tt {
			return
		}
	}
	a.warnAt(pos, CodeVacuous, subject,
		"quantifies over undeclared thread type %q, so its domain is always empty", tt)
}

// useParam checks that the class(es) a variable ranges over declare the
// parameter (GEM003). Unbound variables are reported by useEventVar.
func (a *analysis) useParam(env binders, v, param string, pos Pos, subject string) {
	a.useEventVar(env, v, pos, subject)
	refs, ok := env.events[v]
	if !ok {
		return
	}
	for _, ref := range refs {
		if a.refHasParam(ref, param) {
			return
		}
	}
	if len(refs) == 1 {
		a.errAt(pos, CodeDanglingParam, subject,
			"event class %s declares no parameter %q", refs[0], param)
		return
	}
	a.errAt(pos, CodeDanglingParam, subject,
		"no class of variable %q declares parameter %q", v, param)
}

// checkRefParam checks a parameter read directly on a class reference
// (FIFO). The reference itself must already have resolved.
func (a *analysis) checkRefParam(ref core.ClassRef, param string, pos Pos, subject string) {
	if !a.refHasParam(ref, param) {
		a.errAt(pos, CodeDanglingParam, subject,
			"event class %s declares no parameter %q", ref, param)
	}
}

// refHasParam reports whether some declaration matched by the reference
// declares the parameter. Dangling references count as "has" so a single
// defect is reported once (as GEM001/GEM002), not twice.
func (a *analysis) refHasParam(ref core.ClassRef, param string) bool {
	elems := a.resolveElems(ref)
	if len(elems) == 0 {
		return true
	}
	for _, e := range elems {
		d, ok := a.s.Element(e)
		if !ok {
			continue
		}
		if ref.Class == "" {
			return true
		}
		ec, ok := d.EventDecl(ref.Class)
		if ok && ec.HasParam(param) {
			return true
		}
	}
	return false
}

// unsat conservatively decides whether a formula can never hold, given
// the binder environment; it returns a human-readable reason, or "".
// Only guaranteed-unsatisfiable shapes are reported, so every reason is
// a real vacuity, never a heuristic guess.
func (a *analysis) unsat(f logic.Formula, env binders) string {
	switch g := f.(type) {
	case logic.FalseF:
		return "the antecedent is FALSE"
	case logic.And:
		for _, sub := range g {
			if r := a.unsat(sub, env); r != "" {
				return r
			}
		}
	case logic.Or:
		if len(g) == 0 {
			return ""
		}
		for _, sub := range g {
			if a.unsat(sub, env) == "" {
				return ""
			}
		}
		return "every disjunct of the antecedent is unsatisfiable"
	case logic.Box:
		return a.unsat(g.F, env)
	case logic.Diamond:
		return a.unsat(g.F, env)
	case logic.Exists:
		return a.unsat(g.Body, env.bindEvent(g.Var, g.Ref))
	case logic.ExistsUnique:
		return a.unsat(g.Body, env.bindEvent(g.Var, g.Ref))
	case logic.ExistsUniqueIn:
		return a.unsat(g.Body, env.bindEvent(g.Var, g.Refs...))
	case logic.ExistsThread:
		return a.unsat(g.Body, env.bindThread(g.Var, g.Type))
	case logic.InClass:
		if incompatibleAll(env.events[g.Var], []core.ClassRef{g.Ref}) {
			return fmt.Sprintf("%s can never be of class %s", g.Var, g.Ref)
		}
	case logic.AtElement:
		refs := env.events[g.Var]
		if len(refs) == 0 {
			return ""
		}
		for _, r := range refs {
			if r.Element == "" || r.Element == g.Element {
				return ""
			}
		}
		return fmt.Sprintf("%s ranges over %s and can never occur at element %s",
			g.Var, refsString(refs), g.Element)
	case logic.SameEvent:
		if incompatibleAll(env.events[g.X], env.events[g.Y]) {
			return fmt.Sprintf("%s and %s range over disjoint event classes and can never be equal", g.X, g.Y)
		}
	case logic.ElemOrdered:
		xs, ys := env.events[g.X], env.events[g.Y]
		if len(xs) == 0 || len(ys) == 0 {
			return ""
		}
		for _, rx := range xs {
			for _, ry := range ys {
				if rx.Element == "" || ry.Element == "" || rx.Element == ry.Element {
					return ""
				}
			}
		}
		return fmt.Sprintf("%s and %s always occur at different elements, so %s ~> %s never holds",
			g.X, g.Y, g.X, g.Y)
	case logic.Enables:
		if a.universe == nil {
			return ""
		}
		xs, ys := env.events[g.X], env.events[g.Y]
		if len(xs) == 0 || len(ys) == 0 {
			return ""
		}
		for _, rx := range xs {
			for _, ry := range ys {
				if a.enablePossible(rx, ry) {
					return ""
				}
			}
		}
		return fmt.Sprintf("the access relation forbids every enable edge from %s to %s",
			refsString(xs), refsString(ys))
	}
	return ""
}

// incompatibleAll reports that every pairing of the two binder-ref sets
// is contradictory (different fixed element or different fixed class).
// Empty sets (unbound variables) yield false.
func incompatibleAll(xs, ys []core.ClassRef) bool {
	if len(xs) == 0 || len(ys) == 0 {
		return false
	}
	for _, x := range xs {
		for _, y := range ys {
			elemClash := x.Element != "" && y.Element != "" && x.Element != y.Element
			classClash := x.Class != "" && y.Class != "" && x.Class != y.Class
			if !elemClash && !classClash {
				return false
			}
		}
	}
	return true
}

// enablePossible reports whether some resolution of the two references
// admits a legal enable edge under the access relation.
func (a *analysis) enablePossible(src, dst core.ClassRef) bool {
	ses, tes := a.resolveElems(src), a.resolveElems(dst)
	if len(ses) == 0 || len(tes) == 0 {
		return true // dangling: reported elsewhere, assume possible
	}
	for _, se := range ses {
		for _, te := range tes {
			if a.universe.MayEnable(se, te, dst.Class) {
				return true
			}
		}
	}
	return false
}

func refsString(refs []core.ClassRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
