package lint_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gem/internal/analyze"
	"gem/internal/lint"
)

// TestSARIFCorpus deep-analyzes the whole fixture corpus and golden-tests
// the combined SARIF 2.1.0 log: one run, rules for every code that fired,
// results in the canonical (file, position, code, subject) order.
// Regenerate with: go test ./internal/lint -run SARIF -update
func TestSARIFCorpus(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.gem"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(fixtures)
	var all []lint.FileDiagnostic
	for _, path := range fixtures {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := analyze.AnalyzeSource(string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, d := range res.All() {
			all = append(all, lint.FileDiagnostic{File: filepath.Base(path), Diagnostic: d})
		}
	}

	var sb strings.Builder
	if err := lint.WriteSARIF(&sb, all); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	for _, code := range []string{"GEM009", "GEM010", "GEM011", "GEM012"} {
		if !strings.Contains(got, `"id": "`+code+`"`) {
			t.Errorf("SARIF corpus missing rule %s", code)
		}
	}

	goldenPath := filepath.Join("testdata", "corpus.sarif.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("SARIF corpus mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSARIFZeroPosition is the regression test for the invalid
// "startLine": 0 region: a diagnostic with an unknown position (such as
// the group-containment-cycle finding, which no single line owns) must
// carry a location without any region, and a known line with an unknown
// column must omit startColumn — SARIF 2.1.0 regions are 1-based.
func TestSARIFZeroPosition(t *testing.T) {
	diags := []lint.FileDiagnostic{
		{File: "cycle.gem", Diagnostic: lint.Diagnostic{Code: lint.CodeDanglingElement,
			Severity: lint.SeverityError, Subject: "group structure",
			Message: "group containment cycle through g1"}},
		{File: "cycle.gem", Diagnostic: lint.Diagnostic{Code: lint.CodeDeadDecl,
			Severity: lint.SeverityWarning, Subject: "element a", Message: "unused",
			Pos: lint.Pos{Line: 7}}},
	}
	var sb strings.Builder
	if err := lint.WriteSARIF(&sb, diags); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Contains(got, `"startLine": 0`) {
		t.Errorf("zero-position diagnostic produced an invalid startLine 0 region:\n%s", got)
	}
	if strings.Contains(got, `"startColumn": 0`) {
		t.Errorf("unknown column produced an invalid startColumn 0:\n%s", got)
	}
	if !strings.Contains(got, `"uri": "cycle.gem"`) {
		t.Errorf("zero-position diagnostic lost its artifact location:\n%s", got)
	}
	if !strings.Contains(got, `"startLine": 7`) {
		t.Errorf("positioned diagnostic lost its region:\n%s", got)
	}

	// The corpus golden must stay free of zero regions too: the fixture
	// set includes gem001_group_cycle.gem, whose GEM001 finding has no
	// position.
	golden, err := os.ReadFile(filepath.Join("testdata", "corpus.sarif.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(golden), `"startLine": 0`) {
		t.Error("corpus.sarif.golden contains an invalid startLine 0 region")
	}
}

// TestSARIFDeterministic renders the same diagnostics twice and requires
// byte-identical output.
func TestSARIFDeterministic(t *testing.T) {
	diags := []lint.FileDiagnostic{
		{File: "a.gem", Diagnostic: lint.Diagnostic{Code: lint.CodePrereqCycle,
			Severity: lint.SeverityError, Subject: "restriction \"r\" of a", Message: "cycle",
			Pos: lint.Pos{Line: 3, Col: 1}}},
		{File: "b.gem", Diagnostic: lint.Diagnostic{Code: lint.CodeDeadDecl,
			Severity: lint.SeverityWarning, Subject: "element x", Message: "unused"}},
	}
	var one, two strings.Builder
	if err := lint.WriteSARIF(&one, diags); err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteSARIF(&two, diags); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("WriteSARIF output is not deterministic")
	}
	if !strings.Contains(one.String(), `"version": "2.1.0"`) {
		t.Error("SARIF output missing version 2.1.0")
	}
}
