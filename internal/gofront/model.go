package gofront

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/lint"
	"gem/internal/logic"
	"gem/internal/spec"
)

// This file compiles a rawModel — the operation list one root function
// produced — into a GEM model: goroutines become elements, operations
// become events (program order at one goroutine is the element order),
// and the pairings the matching analysis establishes (send↔receive,
// lock↔unlock, Done↔Wait, spawn↔first child operation) become enable
// edges. Restrictions describing each pairing are emitted only when the
// matching is complete and every edge survived, so the extracted
// computation is always legal with respect to its extracted spec — a
// defective program shows up through the GEM013–GEM016 diagnostics, not
// as a legality failure.

// Model is one root function compiled to GEM.
type Model struct {
	// Name is "<package>.<function>".
	Name string
	// Func is the root function's name.
	Func string
	// File is the file declaring the root function.
	File string

	Spec *spec.Spec
	Comp *core.Computation

	Ops  []Op
	Gors []Goroutine
	// EventOf maps each operation index to its event.
	EventOf []core.EventID
	// Enables are the enable edges, in the deterministic order they were
	// accepted.
	Enables [][2]core.EventID
	// Dropped are candidate enable edges skipped because they would have
	// made the temporal order cyclic — exactly the pairings a circular
	// wait (GEM015) is made of.
	Dropped [][2]core.EventID

	Diags []lint.FileDiagnostic

	chans   []*chanInfo
	mutexes []*mutexInfo
	wgs     []*wgInfo
	names   map[objKey]string
}

// chanInfo aggregates one channel's operations (indices into Ops).
type chanInfo struct {
	key    objKey
	cap    int
	sends  []int
	recvs  []int
	closes []int
	// pairs are matched (send, recv) operation pairs; closePairs matched
	// (close, recv).
	pairs      [][2]int
	closePairs [][2]int
	edgesOK    bool
	hasLoopOp  bool
}

type lockPair struct{ lock, unlock int }

// doubleLock records a Lock executed while the same goroutine already
// holds the mutex: the inner lock waits for an unlock that program order
// puts after it.
type doubleLock struct {
	lock       int
	heldSince  int // the outer lock operation
	releasedBy int // the unlock matching heldSince, -1 if it has none
}

// mutexInfo aggregates one mutex's lock structure: write pairs
// (Lock/Unlock) and, for sync.RWMutex, reader pairs (RLock/RUnlock).
type mutexInfo struct {
	key               objKey
	pairs             []lockPair
	rpairs            []lockPair
	unmatchedLocks    []int
	unmatchedUnlocks  []int
	unmatchedRLocks   []int
	unmatchedRUnlocks []int
	doubles           []doubleLock
	edgesOK           bool
}

// wgInfo aggregates one WaitGroup's operations.
type wgInfo struct {
	key      objKey
	adds     []int
	dones    []int
	waits    []int
	addTotal int // summed constant deltas; -1 when unknowable
	edgesOK  bool
}

// buildModel compiles one extraction result. It only errors on an
// internal invariant failure (the cycle-avoiding edge construction makes
// core.Builder.Build succeed by design).
func buildModel(pkg *Package, raw *rawModel) (*Model, error) {
	m := &Model{
		Name:    pkg.Name + "." + raw.fnName,
		Func:    raw.fnName,
		File:    raw.fnPos.Filename,
		Ops:     raw.ops,
		Gors:    raw.gors,
		EventOf: make([]core.EventID, len(raw.ops)),
	}
	m.assignNames()
	m.collectChans(raw)
	m.collectMutexes()
	m.collectWGs()

	m.buildSpecSkeleton(pkg.Name)

	b := core.NewBuilder()
	for i, op := range m.Ops {
		m.EventOf[i] = b.Event(m.Gors[op.G].Name, m.classOf(op), nil)
	}
	m.addEnables(b)
	comp, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gofront: internal error building %s: %v", m.Name, err)
	}
	m.Comp = comp
	m.addRestrictions()
	m.diagnose()
	return m, nil
}

// assignNames gives every known synchronization object a deterministic,
// collision-free class-name suffix, in first-operation order.
func (m *Model) assignNames() {
	m.names = make(map[objKey]string)
	taken := make(map[string]bool)
	for _, op := range m.Ops {
		if op.Kind == OpSpawn || !op.Key.known() {
			continue
		}
		if _, ok := m.names[op.Key]; ok {
			continue
		}
		base := sanitizeName(op.Key.displayName())
		name := base
		for n := 2; taken[name]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		taken[name] = true
		m.names[op.Key] = name
	}
}

func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if len(out) == 0 {
				out = append(out, 'o')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "obj"
	}
	return string(out)
}

// classOf renders the event class of an operation: "spawn" for spawns,
// "<kind>_<object>" otherwise ("send_ch", "lock_mu", …). Operations on
// unresolvable objects get a positional suffix so they stay distinct.
func (m *Model) classOf(op Op) string {
	if op.Kind == OpSpawn {
		return "spawn"
	}
	name, ok := m.names[op.Key]
	if !ok {
		name = sanitizeName(op.Key.path)
	}
	return op.Kind.String() + "_" + name
}

// objName renders an object for messages ("ch", "s.mu").
func (m *Model) objName(key objKey) string {
	if key.known() {
		return key.displayName()
	}
	return "?"
}

// collectChans groups channel operations by object (known keys only) in
// first-seen order and matches sends to receives index-for-index, then
// leftover receives to a close. The index pairing is exact for the
// straight-line programs the extractor models; loop-carried operations
// poison the counting-based restrictions but still pair for the wait
// analysis.
func (m *Model) collectChans(raw *rawModel) {
	byKey := make(map[objKey]*chanInfo)
	for i, op := range m.Ops {
		var list *[]int
		switch op.Kind {
		case OpSend, OpRecv, OpClose:
		default:
			continue
		}
		if !op.Key.known() {
			continue
		}
		ci := byKey[op.Key]
		if ci == nil {
			ci = &chanInfo{key: op.Key, cap: raw.chanCap[op.Key]}
			byKey[op.Key] = ci
			m.chans = append(m.chans, ci)
		}
		switch op.Kind {
		case OpSend:
			list = &ci.sends
		case OpRecv:
			list = &ci.recvs
		case OpClose:
			list = &ci.closes
		}
		*list = append(*list, i)
		ci.hasLoopOp = ci.hasLoopOp || op.InLoop
	}
	for _, ci := range m.chans {
		n := len(ci.sends)
		if len(ci.recvs) < n {
			n = len(ci.recvs)
		}
		for i := 0; i < n; i++ {
			ci.pairs = append(ci.pairs, [2]int{ci.sends[i], ci.recvs[i]})
		}
		if len(ci.closes) > 0 {
			for _, r := range ci.recvs[n:] {
				ci.closePairs = append(ci.closePairs, [2]int{ci.closes[0], r})
			}
		}
	}
}

// collectMutexes matches Lock/Unlock and RLock/RUnlock per mutex per
// goroutine with a mode-aware stack (LIFO, the way nested critical
// sections release), recording double-locks. Reader acquisitions are
// shared: an RLock while the goroutine only holds reader locks is fine;
// a Lock while holding anything, or an RLock while holding the write
// lock, self-deadlocks.
func (m *Model) collectMutexes() {
	byKey := make(map[objKey]*mutexInfo)
	type stackKey struct {
		key objKey
		g   int
	}
	stacks := make(map[stackKey][]int)
	var pending []struct {
		mi        *mutexInfo
		lock, top int
	}
	// lastOfKind returns the most recent stack entry of the given
	// acquisition kind, or -1.
	lastOfKind := func(stack []int, kind OpKind) int {
		for j := len(stack) - 1; j >= 0; j-- {
			if m.Ops[stack[j]].Kind == kind {
				return j
			}
		}
		return -1
	}
	for i, op := range m.Ops {
		switch op.Kind {
		case OpLock, OpUnlock, OpRLock, OpRUnlock:
		default:
			continue
		}
		if !op.Key.known() {
			continue
		}
		mi := byKey[op.Key]
		if mi == nil {
			mi = &mutexInfo{key: op.Key}
			byKey[op.Key] = mi
			m.mutexes = append(m.mutexes, mi)
		}
		sk := stackKey{key: op.Key, g: op.G}
		stack := stacks[sk]
		switch op.Kind {
		case OpLock:
			if len(stack) > 0 {
				pending = append(pending, struct {
					mi        *mutexInfo
					lock, top int
				}{mi, i, stack[len(stack)-1]})
			}
			stacks[sk] = append(stack, i)
		case OpRLock:
			if w := lastOfKind(stack, OpLock); w >= 0 {
				pending = append(pending, struct {
					mi        *mutexInfo
					lock, top int
				}{mi, i, stack[w]})
			}
			stacks[sk] = append(stack, i)
		case OpUnlock:
			j := lastOfKind(stack, OpLock)
			if j < 0 {
				mi.unmatchedUnlocks = append(mi.unmatchedUnlocks, i)
				continue
			}
			mi.pairs = append(mi.pairs, lockPair{lock: stack[j], unlock: i})
			stacks[sk] = append(stack[:j:j], stack[j+1:]...)
		case OpRUnlock:
			j := lastOfKind(stack, OpRLock)
			if j < 0 {
				mi.unmatchedRUnlocks = append(mi.unmatchedRUnlocks, i)
				continue
			}
			mi.rpairs = append(mi.rpairs, lockPair{lock: stack[j], unlock: i})
			stacks[sk] = append(stack[:j:j], stack[j+1:]...)
		}
	}
	for sk, stack := range stacks {
		mi := byKey[sk.key]
		for _, l := range stack {
			if m.Ops[l].Kind == OpRLock {
				mi.unmatchedRLocks = append(mi.unmatchedRLocks, l)
			} else {
				mi.unmatchedLocks = append(mi.unmatchedLocks, l)
			}
		}
	}
	for _, mi := range m.mutexes {
		sortInts(mi.unmatchedLocks)
		sortInts(mi.unmatchedRLocks)
	}
	for _, p := range pending {
		released := -1
		for _, pr := range p.mi.pairs {
			if pr.lock == p.top {
				released = pr.unlock
				break
			}
		}
		if released < 0 {
			for _, pr := range p.mi.rpairs {
				if pr.lock == p.top {
					released = pr.unlock
					break
				}
			}
		}
		p.mi.doubles = append(p.mi.doubles, doubleLock{
			lock: p.lock, heldSince: p.top, releasedBy: released,
		})
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// collectWGs groups WaitGroup operations and sums the constant Add
// deltas; a non-constant or loop-carried Add (or a loop-carried Done)
// makes the count unknowable and disables the counting diagnostic.
func (m *Model) collectWGs() {
	byKey := make(map[objKey]*wgInfo)
	for i, op := range m.Ops {
		switch op.Kind {
		case OpAdd, OpDone, OpWait:
		default:
			continue
		}
		if !op.Key.known() {
			continue
		}
		wi := byKey[op.Key]
		if wi == nil {
			wi = &wgInfo{key: op.Key}
			byKey[op.Key] = wi
			m.wgs = append(m.wgs, wi)
		}
		switch op.Kind {
		case OpAdd:
			wi.adds = append(wi.adds, i)
			if wi.addTotal >= 0 && op.Add >= 0 && !op.InLoop {
				wi.addTotal += op.Add
			} else {
				wi.addTotal = -1
			}
		case OpDone:
			wi.dones = append(wi.dones, i)
			if op.InLoop {
				wi.addTotal = -1
			}
		case OpWait:
			wi.waits = append(wi.waits, i)
		}
	}
}

// buildSpecSkeleton declares one element per goroutine with the event
// classes its operations use.
func (m *Model) buildSpecSkeleton(pkgName string) {
	s := spec.New(pkgName + "." + m.Func)
	classes := make([][]string, len(m.Gors))
	seen := make([]map[string]bool, len(m.Gors))
	for g := range m.Gors {
		seen[g] = make(map[string]bool)
	}
	for _, op := range m.Ops {
		c := m.classOf(op)
		if !seen[op.G][c] {
			seen[op.G][c] = true
			classes[op.G] = append(classes[op.G], c)
		}
	}
	for g, gor := range m.Gors {
		d := &spec.ElementDecl{Name: gor.Name}
		for _, c := range classes[g] {
			d.Events = append(d.Events, spec.EventClassDecl{Name: c})
		}
		s.AddElement(d)
	}
	m.Spec = s
}

// addEnables adds the candidate enable edges in deterministic order,
// skipping any edge that would close a temporal-order cycle with the
// edges (and element orders) already present. A skipped edge lands in
// Dropped and gates off the restriction describing its pairing — which
// is exactly what happens with a crossed rendezvous: the program order
// and the pairing cannot both be respected, the model stays acyclic (and
// legal), and the circular wait surfaces as GEM015 instead.
func (m *Model) addEnables(b *core.Builder) {
	// succ holds accepted enable edges plus the element order, as op
	// indices, for the DFS cycle check.
	succ := make([][]int, len(m.Ops))
	for i := range m.Ops {
		if last := prevOnSameG(m.Ops, i); last >= 0 {
			succ[last] = append(succ[last], i)
		}
	}
	reaches := func(from, to int) bool {
		if from == to {
			return true
		}
		seen := make([]bool, len(m.Ops))
		stack := []int{from}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, succ[v]...)
		}
		return false
	}
	add := func(src, dst int) bool {
		if reaches(dst, src) {
			m.Dropped = append(m.Dropped, [2]core.EventID{m.EventOf[src], m.EventOf[dst]})
			return false
		}
		succ[src] = append(succ[src], dst)
		b.Enable(m.EventOf[src], m.EventOf[dst])
		m.Enables = append(m.Enables, [2]core.EventID{m.EventOf[src], m.EventOf[dst]})
		return true
	}

	// Spawn edges: the go statement enables the child's first operation.
	for i, op := range m.Ops {
		if op.Kind != OpSpawn {
			continue
		}
		if first := firstOpOf(m.Ops, op.Child); first >= 0 {
			add(i, first)
		}
	}
	// Channel pairings.
	for _, ci := range m.chans {
		ci.edgesOK = true
		for _, p := range ci.pairs {
			ci.edgesOK = add(p[0], p[1]) && ci.edgesOK
		}
		for _, p := range ci.closePairs {
			ci.edgesOK = add(p[0], p[1]) && ci.edgesOK
		}
	}
	// Lock regions (writer and reader).
	for _, mi := range m.mutexes {
		mi.edgesOK = true
		for _, p := range mi.pairs {
			mi.edgesOK = add(p.lock, p.unlock) && mi.edgesOK
		}
		for _, p := range mi.rpairs {
			mi.edgesOK = add(p.lock, p.unlock) && mi.edgesOK
		}
	}
	// WaitGroup joins: every Done enables every Wait.
	for _, wi := range m.wgs {
		wi.edgesOK = true
		for _, w := range wi.waits {
			for _, d := range wi.dones {
				wi.edgesOK = add(d, w) && wi.edgesOK
			}
		}
	}
}

func prevOnSameG(ops []Op, i int) int {
	for j := i - 1; j >= 0; j-- {
		if ops[j].G == ops[i].G {
			return j
		}
	}
	return -1
}

func firstOpOf(ops []Op, g int) int {
	for i, op := range ops {
		if op.G == g {
			return i
		}
	}
	return -1
}

// addRestrictions emits the GEM restrictions describing the pairings —
// but only where the pairing is complete and every edge survived, so the
// computation satisfies its own spec by construction.
func (m *Model) addRestrictions() {
	for _, ci := range m.chans {
		n := m.names[ci.key]
		sendRef := core.Ref("", "send_"+n)
		recvRef := core.Ref("", "recv_"+n)
		srcRefs := []core.ClassRef{sendRef}
		if len(ci.closes) > 0 {
			srcRefs = append(srcRefs, core.Ref("", "close_"+n))
		}
		allRecvsMatched := len(ci.pairs)+len(ci.closePairs) == len(ci.recvs)
		if len(ci.recvs) > 0 && allRecvsMatched && ci.edgesOK {
			// Every receive is enabled by exactly one send or close.
			m.Spec.AddRestriction("rendezvous_"+n, logic.ForAll{
				Var: "r", Ref: recvRef,
				Body: logic.ExistsUniqueIn{
					Var: "s", Refs: srcRefs,
					Body: logic.Enables{X: "s", Y: "r"},
				},
			})
		}
		if len(ci.sends) > 0 && len(ci.pairs) == len(ci.sends) &&
			ci.edgesOK && !ci.hasLoopOp {
			// Every send that has occurred is eventually received.
			m.Spec.AddRestriction("delivery_"+n, logic.Box{F: logic.ForAll{
				Var: "s", Ref: sendRef,
				Body: logic.Implies{
					If: logic.Occurred{Var: "s"},
					Then: logic.Diamond{F: logic.Exists{
						Var: "r", Ref: recvRef,
						Body: logic.And{
							logic.Enables{X: "s", Y: "r"},
							logic.Occurred{Var: "r"},
						},
					}},
				},
			}})
		}
	}
	for _, mi := range m.mutexes {
		n := m.names[mi.key]
		if len(mi.pairs) > 0 && len(mi.unmatchedLocks) == 0 &&
			len(mi.unmatchedUnlocks) == 0 && mi.edgesOK {
			// Every unlock is enabled by exactly one lock (its own acquire).
			m.Spec.AddRestriction("mutex_"+n, logic.ForAll{
				Var: "u", Ref: core.Ref("", "unlock_"+n),
				Body: logic.ExistsUnique{
					Var: "l", Ref: core.Ref("", "lock_"+n),
					Body: logic.Enables{X: "l", Y: "u"},
				},
			})
		}
		if len(mi.rpairs) > 0 && len(mi.unmatchedRLocks) == 0 &&
			len(mi.unmatchedRUnlocks) == 0 && mi.edgesOK {
			// Reader regions pair the same way: every RUnlock is enabled
			// by exactly one RLock.
			m.Spec.AddRestriction("rmutex_"+n, logic.ForAll{
				Var: "u", Ref: core.Ref("", "runlock_"+n),
				Body: logic.ExistsUnique{
					Var: "l", Ref: core.Ref("", "rlock_"+n),
					Body: logic.Enables{X: "l", Y: "u"},
				},
			})
		}
	}
	for _, wi := range m.wgs {
		if len(wi.dones) == 0 || len(wi.waits) == 0 || !wi.edgesOK {
			continue
		}
		n := m.names[wi.key]
		// Every Done flows into a Wait (the join structure).
		m.Spec.AddRestriction("waitgroup_"+n, logic.ForAll{
			Var: "d", Ref: core.Ref("", "done_"+n),
			Body: logic.Exists{
				Var: "w", Ref: core.Ref("", "wait_"+n),
				Body: logic.Enables{X: "d", Y: "w"},
			},
		})
	}
}

// The exported object-identity surface: downstream passes (internal/race)
// group operations by the object they act on without reaching into the
// unexported objKey representation.

// SameObj reports whether operations i and j act on the same resolved
// object (same root types.Object and selector path).
func (m *Model) SameObj(i, j int) bool {
	return m.Ops[i].Key.known() && m.Ops[i].Key == m.Ops[j].Key
}

// ObjIDOf returns a stable per-model identifier for the object an
// operation acts on (the collision-free class-name suffix assignNames
// picked), and whether the object was resolved at all.
func (m *Model) ObjIDOf(op int) (string, bool) {
	key := m.Ops[op].Key
	if !key.known() {
		return "", false
	}
	id, ok := m.names[key]
	return id, ok
}

// ObjNameOf renders the object an operation acts on for messages
// ("counter", "s.mu").
func (m *Model) ObjNameOf(op int) string { return m.objName(m.Ops[op].Key) }
