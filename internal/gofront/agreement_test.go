package gofront_test

import (
	"path/filepath"
	"testing"

	"gem/internal/core"
	"gem/internal/gofront"
	"gem/internal/legal"
	"gem/internal/logic"
)

var engines = map[string]logic.Engine{
	"auto":    logic.EngineAuto,
	"lattice": logic.EngineLattice,
	"seq":     logic.EngineSeq,
}

// TestExtractedModelsLegalAllEngines: every extracted model — including
// the defective ones — must be legal with respect to its own extracted
// spec under every engine. Defects surface as GEM013–GEM016
// diagnostics, never as legality failures, because restrictions are
// gated off whenever their pairing is incomplete or an enable edge had
// to be dropped.
func TestExtractedModelsLegalAllEngines(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			res, err := gofront.AnalyzeDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Models) == 0 {
				t.Fatalf("fixture %s produced no models", dir)
			}
			for _, m := range res.Models {
				if err := m.Spec.Validate(); err != nil {
					t.Fatalf("%s: invalid spec: %v", m.Name, err)
				}
				for ename, engine := range engines {
					r := legal.Check(m.Spec, m.Comp, legal.Options{
						Check: logic.CheckOptions{Engine: engine},
					})
					if !r.Legal() {
						t.Errorf("%s: not legal under %s engine: %v", m.Name, ename, r.Error())
					}
				}
			}
		})
	}
}

// rebuildWithoutEdge reconstructs a model's computation minus one enable
// edge, using the exported Ops/Gors/Enables surface.
func rebuildWithoutEdge(t *testing.T, m *gofront.Model, drop [2]core.EventID) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	for _, id := range m.EventOf {
		ev := m.Comp.Event(id)
		b.Event(ev.Element, ev.Class, nil)
	}
	dropped := false
	for _, e := range m.Enables {
		if e == drop && !dropped {
			dropped = true
			continue
		}
		b.Enable(e[0], e[1])
	}
	if !dropped {
		t.Fatalf("edge %v not present in %s", drop, m.Name)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineAgreementOnMutatedComputation drops the send→recv pairing
// edge from the clean rendezvous model: the rendezvous restriction must
// now fail, every engine must agree, and each engine's counterexample
// must be a genuine falsifying witness (Counterexample.Verify).
func TestEngineAgreementOnMutatedComputation(t *testing.T) {
	res, err := gofront.AnalyzeDir(filepath.Join("testdata", "src", "clean_gem013_paired"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("want 1 model, got %d", len(res.Models))
	}
	m := res.Models[0]
	if len(m.Enables) == 0 {
		t.Fatal("model has no enable edges")
	}
	// The last accepted edge is the channel pairing (spawn edges come
	// first in the deterministic candidate order).
	mutated := rebuildWithoutEdge(t, m, m.Enables[len(m.Enables)-1])

	for ename, engine := range engines {
		r := legal.Check(m.Spec, mutated, legal.Options{
			Check: logic.CheckOptions{Engine: engine},
		})
		if r.Legal() {
			t.Errorf("%s engine: mutated computation unexpectedly legal", ename)
			continue
		}
		found := false
		for _, v := range r.Violations {
			if v.Restriction == "rendezvous_ch" {
				found = true
			}
			if v.Cx != nil {
				if err := v.Cx.Verify(); err != nil {
					t.Errorf("%s engine: bogus counterexample for %s: %v", ename, v.Restriction, err)
				}
			}
		}
		if !found {
			t.Errorf("%s engine: rendezvous_ch did not fail; violations: %v", ename, r.Violations)
		}
	}
}
