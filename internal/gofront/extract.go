package gofront

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// This file walks Go function bodies and records the concurrency
// operations GEM models: goroutine spawns, channel make/send/receive/
// close, sync.Mutex and sync.RWMutex lock–unlock pairs, and
// sync.WaitGroup Add/Done/Wait. The walk is purely static and
// deliberately linear: every statement of a body is assumed to execute
// once, in source order — branches are walked as if both arms run,
// loops as if their body runs once (operations inside a loop are marked
// InLoop, which the partner analysis treats as "unbounded many"). Calls
// to functions declared in the same package are inlined one level at a
// time (recursion is cut), with channel/mutex/WaitGroup arguments bound
// to the callee's parameters, so the common "locked helper" and
// "worker(ch)" idioms resolve to the caller's objects.

// OpKind classifies one recorded operation.
type OpKind int

// The operation kinds, in declaration order.
const (
	OpSpawn OpKind = iota
	OpSend
	OpRecv
	OpClose
	OpLock
	OpUnlock
	OpRLock
	OpRUnlock
	OpAdd
	OpDone
	OpWait
	OpRead
	OpWrite
)

func (k OpKind) String() string {
	switch k {
	case OpSpawn:
		return "spawn"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpClose:
		return "close"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpRLock:
		return "rlock"
	case OpRUnlock:
		return "runlock"
	case OpAdd:
		return "add"
	case OpDone:
		return "done"
	case OpWait:
		return "wait"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "unknown"
	}
}

// objKey identifies a synchronization object: the types.Object of the
// root identifier plus a field path for selector chains ("s.mu"). An
// operation on an expression the extractor cannot resolve gets a
// position-unique anonymous key, which never pairs with anything and is
// excluded from the partner diagnostics (conservative: no false GEM013).
type objKey struct {
	obj  types.Object
	path string
}

func (k objKey) known() bool { return k.obj != nil }

// Op is one recorded operation.
type Op struct {
	Kind OpKind
	// G indexes the goroutine the operation runs on.
	G int
	// Key identifies the channel/mutex/WaitGroup operated on (zero for
	// spawns).
	Key objKey
	// Pos is the operation's source position.
	Pos token.Position
	// Add is the constant Add delta for OpAdd; -1 when not constant.
	Add int
	// InLoop marks operations inside a for/range body: statically they
	// may repeat, so counting arguments treat them as unbounded.
	InLoop bool
	// Child is the spawned goroutine index for OpSpawn, -1 otherwise.
	Child int
	// Locks, for OpRead/OpWrite, indexes the lock acquisitions (OpLock or
	// OpRLock operations) the accessing goroutine holds at the access —
	// its lockset. Deferred unlocks release at function end, so an access
	// between `mu.Lock(); defer mu.Unlock()` and the return is covered.
	Locks []int
}

// Goroutine is one extracted goroutine.
type Goroutine struct {
	// Name is the GEM element name: the root function's name for the
	// main goroutine, "<func>.g<n>" for spawned ones.
	Name string
	// SpawnOp indexes the spawn operation that created it; -1 for the
	// root goroutine.
	SpawnOp int
}

// rawModel is the extraction result for one root function, before
// compilation into a GEM spec/computation.
type rawModel struct {
	fnName  string
	fnPos   token.Position
	ops     []Op
	gors    []Goroutine
	chanCap map[objKey]int
}

const maxInlineDepth = 8

type extractor struct {
	pkg   *Package
	funcs map[types.Object]*ast.FuncDecl

	raw      *rawModel
	alias    map[types.Object]objKey
	inlining map[*ast.FuncDecl]bool
	depth    int
	loop     int
	gcount   int
	// held tracks, per goroutine, the stack of lock-acquisition operation
	// indices currently held — the lockset snapshotted onto each
	// read/write access.
	held map[int][]int
}

type frame struct {
	g      int
	defers []*ast.CallExpr
}

// packageFuncs indexes the package's function declarations by their
// types.Object, for inlining and root detection.
func packageFuncs(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.info.Defs[fd.Name]; obj != nil {
				out[obj] = fd
			}
		}
	}
	return out
}

// roots returns the package's root functions — those no other function
// in the package references — in source order. Referenced functions are
// analyzed inline at their call/spawn sites, so making them roots too
// would duplicate every diagnostic.
func roots(pkg *Package, funcs map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	referenced := make(map[types.Object]bool)
	for _, fd := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.info.Uses[id]; obj != nil && funcs[obj] != nil {
					referenced[obj] = true
				}
			}
			return true
		})
	}
	var out []*ast.FuncDecl
	for obj, fd := range funcs {
		if !referenced[obj] {
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// extractFunc runs the walk for one root function.
func extractFunc(pkg *Package, funcs map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl) *rawModel {
	x := &extractor{
		pkg:   pkg,
		funcs: funcs,
		raw: &rawModel{
			fnName:  fd.Name.Name,
			fnPos:   pkg.Fset.Position(fd.Pos()),
			chanCap: make(map[objKey]int),
		},
		alias:    make(map[types.Object]objKey),
		inlining: make(map[*ast.FuncDecl]bool),
		held:     make(map[int][]int),
	}
	x.raw.gors = append(x.raw.gors, Goroutine{Name: fd.Name.Name, SpawnOp: -1})
	x.inlining[fd] = true
	x.walkBody(fd.Body, 0)
	x.raw.filterAccesses()
	return x.raw
}

func (x *extractor) emit(op Op) int {
	op.InLoop = op.InLoop || x.loop > 0
	if op.Kind != OpSpawn {
		op.Child = -1
	}
	idx := len(x.raw.ops)
	switch op.Kind {
	case OpLock, OpRLock:
		if op.Key.known() {
			x.held[op.G] = append(x.held[op.G], idx)
		}
	case OpUnlock, OpRUnlock:
		// Release the most recent same-mode acquisition of the same
		// object: Unlock pairs with Lock, RUnlock with RLock.
		want := OpLock
		if op.Kind == OpRUnlock {
			want = OpRLock
		}
		hs := x.held[op.G]
		for j := len(hs) - 1; j >= 0; j-- {
			a := x.raw.ops[hs[j]]
			if a.Kind == want && a.Key == op.Key {
				x.held[op.G] = append(hs[:j:j], hs[j+1:]...)
				break
			}
		}
	case OpRead, OpWrite:
		op.Locks = append([]int(nil), x.held[op.G]...)
	}
	x.raw.ops = append(x.raw.ops, op)
	return idx
}

func (x *extractor) pos(p token.Pos) token.Position { return x.pkg.Fset.Position(p) }

// walkBody walks one function body as goroutine g, running its deferred
// calls (last-in, first-out) at the end — which is how `defer
// mu.Unlock()` closes a lock region in the extracted model.
func (x *extractor) walkBody(body *ast.BlockStmt, g int) {
	fr := &frame{g: g}
	x.stmts(body.List, fr)
	for i := len(fr.defers) - 1; i >= 0; i-- {
		x.runCall(fr.defers[i], fr)
	}
}

func (x *extractor) stmts(list []ast.Stmt, fr *frame) {
	for _, s := range list {
		x.stmt(s, fr)
	}
}

func (x *extractor) stmt(s ast.Stmt, fr *frame) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		x.stmts(s.List, fr)
	case *ast.ExprStmt:
		x.expr(s.X, fr)
	case *ast.SendStmt:
		x.expr(s.Value, fr)
		x.expr(s.Chan, fr)
		x.emit(Op{Kind: OpSend, G: fr.g, Key: x.keyOf(s.Chan), Pos: x.pos(s.Arrow)})
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			x.expr(r, fr)
		}
		for _, l := range s.Lhs {
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// Compound assignment (+=, |=, …) reads before writing.
				x.access(l, OpRead, fr)
			}
			x.writeAccess(l, fr)
		}
		x.trackAssign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						x.expr(v, fr)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					if len(vs.Values) > 0 {
						for _, l := range lhs {
							x.writeAccess(l, fr)
						}
					}
					x.trackAssign(lhs, vs.Values)
				}
			}
		}
	case *ast.GoStmt:
		x.goStmt(s, fr)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			x.expr(a, fr)
		}
		fr.defers = append(fr.defers, s.Call)
	case *ast.IfStmt:
		if s.Init != nil {
			x.stmt(s.Init, fr)
		}
		x.expr(s.Cond, fr)
		x.stmts(s.Body.List, fr)
		if s.Else != nil {
			x.stmt(s.Else, fr)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			x.stmt(s.Init, fr)
		}
		x.expr(s.Cond, fr)
		x.loop++
		x.stmts(s.Body.List, fr)
		if s.Post != nil {
			x.stmt(s.Post, fr)
		}
		x.loop--
	case *ast.RangeStmt:
		x.expr(s.X, fr)
		if x.isChan(s.X) {
			x.emit(Op{Kind: OpRecv, G: fr.g, Key: x.keyOf(s.X), Pos: x.pos(s.For), InLoop: true})
		}
		x.loop++
		x.stmts(s.Body.List, fr)
		x.loop--
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					x.stmt(cc.Comm, fr)
				}
				x.stmts(cc.Body, fr)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			x.stmt(s.Init, fr)
		}
		x.expr(s.Tag, fr)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				x.stmts(cc.Body, fr)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			x.stmt(s.Init, fr)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				x.stmts(cc.Body, fr)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			x.expr(r, fr)
		}
	case *ast.LabeledStmt:
		x.stmt(s.Stmt, fr)
	case *ast.IncDecStmt:
		// x++ reads then writes x.
		x.expr(s.X, fr)
		x.writeAccess(s.X, fr)
	}
}

// writeAccess records the write an assignment target performs, also
// scanning index subexpressions for the reads they contain (`m[k] = v`
// writes m and reads k).
func (x *extractor) writeAccess(l ast.Expr, fr *frame) {
	if ix, ok := l.(*ast.IndexExpr); ok {
		x.expr(ix.Index, fr)
	}
	x.access(l, OpWrite, fr)
}

// trackAssign registers channel capacities (`ch := make(chan T, n)`) and
// channel/mutex aliases (`c2 := c1`).
func (x *extractor) trackAssign(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := x.pkg.info.Defs[id]
		if obj == nil {
			obj = x.pkg.info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if cap, ok := x.makeChanCap(rhs[i]); ok {
			x.raw.chanCap[objKey{obj: obj}] = cap
			continue
		}
		if rid, ok := rhs[i].(*ast.Ident); ok && x.isChan(rid) {
			x.alias[obj] = x.keyOf(rid)
		}
	}
}

// makeChanCap recognizes make(chan T[, n]) and returns the constant
// capacity (0 when omitted or not constant).
func (x *extractor) makeChanCap(e ast.Expr) (int, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return 0, false
	}
	if _, ok := x.pkg.info.Uses[id].(*types.Builtin); !ok {
		return 0, false
	}
	if len(call.Args) == 0 || !x.isChanType(call.Args[0]) {
		return 0, false
	}
	if len(call.Args) >= 2 {
		if tv, ok := x.pkg.info.Types[call.Args[1]]; ok && tv.Value != nil {
			if n, ok := constant.Int64Val(tv.Value); ok && n >= 0 {
				return int(n), true
			}
		}
		return 0, true
	}
	return 0, true
}

func (x *extractor) isChanType(e ast.Expr) bool {
	tv, ok := x.pkg.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func (x *extractor) isChan(e ast.Expr) bool { return x.isChanType(e) }

// goStmt spawns a new goroutine element and walks its body.
func (x *extractor) goStmt(s *ast.GoStmt, fr *frame) {
	for _, a := range s.Call.Args {
		x.expr(a, fr)
	}
	x.gcount++
	child := len(x.raw.gors)
	x.raw.gors = append(x.raw.gors, Goroutine{
		Name:    fmt.Sprintf("%s.g%d", x.raw.fnName, x.gcount),
		SpawnOp: -1, // fixed up below
	})
	spawn := x.emit(Op{Kind: OpSpawn, G: fr.g, Pos: x.pos(s.Go), Child: child})
	x.raw.gors[child].SpawnOp = spawn
	x.invoke(s.Call, child)
}

// runCall executes a deferred call at frame end.
func (x *extractor) runCall(call *ast.CallExpr, fr *frame) {
	if x.opCall(call, fr) {
		return
	}
	x.invoke(call, fr.g)
}

// invoke resolves a call's target body (function literal, or a function
// declared in this package) and walks it as goroutine g, binding
// channel/mutex/WaitGroup arguments to parameters. Unresolvable targets
// contribute no operations.
func (x *extractor) invoke(call *ast.CallExpr, g int) {
	if x.depth >= maxInlineDepth {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		restore := x.bindParams(lit.Type.Params, call.Args)
		x.depth++
		x.walkBody(lit.Body, g)
		x.depth--
		restore()
		return
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = x.pkg.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = x.pkg.info.Uses[fun.Sel]
	}
	fd := x.funcs[obj]
	if fd == nil || x.inlining[fd] {
		return
	}
	restore := x.bindParams(fd.Type.Params, call.Args)
	x.inlining[fd] = true
	x.depth++
	x.walkBody(fd.Body, g)
	x.depth--
	x.inlining[fd] = false
	restore()
}

// bindParams aliases callee parameters to the caller's argument keys so
// operations inside the callee resolve to the caller's objects. Returns
// a function undoing the bindings (inline sites are a stack).
func (x *extractor) bindParams(params *ast.FieldList, args []ast.Expr) func() {
	if params == nil {
		return func() {}
	}
	type saved struct {
		obj  types.Object
		key  objKey
		had  bool
	}
	var undo []saved
	i := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if i >= len(args) {
				break
			}
			obj := x.pkg.info.Defs[name]
			if obj != nil && x.aliasableArg(args[i]) {
				key := x.keyOf(args[i])
				if key.known() {
					old, had := x.alias[obj]
					undo = append(undo, saved{obj: obj, key: old, had: had})
					x.alias[obj] = key
				}
			}
			i++
		}
	}
	return func() {
		for j := len(undo) - 1; j >= 0; j-- {
			s := undo[j]
			if s.had {
				x.alias[s.obj] = s.key
			} else {
				delete(x.alias, s.obj)
			}
		}
	}
}

// aliasableArg reports whether passing an argument shares the caller's
// object with the callee: channels, sync objects, and pointers do; a
// plain value parameter is a copy, so aliasing it would fabricate
// accesses to the caller's variable.
func (x *extractor) aliasableArg(e ast.Expr) bool {
	if _, isSync := x.syncType(e); isSync {
		return true
	}
	tv, ok := x.pkg.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Chan, *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// expr scans an expression for operations: channel receives, close
// calls, sync method calls, and calls to package functions (inlined).
// Function literals are not entered — they only run when invoked via
// go/defer/call, which the statement walker handles.
func (x *extractor) expr(e ast.Expr, fr *frame) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			x.access(n, OpRead, fr)
		case *ast.SelectorExpr:
			if x.access(n, OpRead, fr) {
				// The whole selector path is one access; don't also
				// record its base.
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				x.emit(Op{Kind: OpRecv, G: fr.g, Key: x.keyOf(n.X), Pos: x.pos(n.OpPos)})
			}
		case *ast.CallExpr:
			if x.opCall(n, fr) {
				return true // still scan args for nested receives
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately invoked literal: walk it here, skip the
				// pruned FuncLit visit.
				restore := x.bindParams(lit.Type.Params, n.Args)
				x.depth++
				if x.depth <= maxInlineDepth {
					x.walkBody(lit.Body, fr.g)
				}
				x.depth--
				restore()
				return true
			}
			x.invoke(n, fr.g)
		}
		return true
	})
}

// opCall recognizes close(ch) and the sync.Mutex/RWMutex/WaitGroup
// method calls, emitting the corresponding operation. Reports whether
// the call was consumed.
func (x *extractor) opCall(call *ast.CallExpr, fr *frame) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, builtin := x.pkg.info.Uses[id].(*types.Builtin); builtin {
			x.emit(Op{Kind: OpClose, G: fr.g, Key: x.keyOf(call.Args[0]), Pos: x.pos(call.Lparen)})
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := x.syncType(sel.X)
	if !ok {
		return false
	}
	kind, ok := syncMethodKind(recv, sel.Sel.Name)
	if !ok {
		return false
	}
	op := Op{Kind: kind, G: fr.g, Key: x.keyOf(sel.X), Pos: x.pos(sel.Sel.Pos()), Add: -1}
	if kind == OpAdd && len(call.Args) == 1 {
		if tv, ok := x.pkg.info.Types[call.Args[0]]; ok && tv.Value != nil {
			if n, ok := constant.Int64Val(tv.Value); ok {
				op.Add = int(n)
			}
		}
	}
	x.emit(op)
	return true
}

// syncType reports the sync type name ("Mutex", "RWMutex", "WaitGroup")
// of an expression, dereferencing one pointer level.
func (x *extractor) syncType(e ast.Expr) (string, bool) {
	tv, ok := x.pkg.info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup":
		return obj.Name(), true
	}
	return "", false
}

func syncMethodKind(recv, method string) (OpKind, bool) {
	switch recv {
	case "Mutex":
		switch method {
		case "Lock":
			return OpLock, true
		case "Unlock":
			return OpUnlock, true
		}
	case "RWMutex":
		switch method {
		case "Lock":
			return OpLock, true
		case "Unlock":
			return OpUnlock, true
		case "RLock":
			return OpRLock, true
		case "RUnlock":
			return OpRUnlock, true
		}
	case "WaitGroup":
		switch method {
		case "Add":
			return OpAdd, true
		case "Done":
			return OpDone, true
		case "Wait":
			return OpWait, true
		}
	}
	return 0, false
}

// keyOf resolves the identity of a channel/mutex/WaitGroup expression:
// the root identifier's object (through parameter bindings and channel
// aliases) plus a selector path. Unresolvable expressions get a
// position-unique anonymous key.
func (x *extractor) keyOf(e ast.Expr) objKey {
	switch e := e.(type) {
	case *ast.Ident:
		obj := x.pkg.info.Uses[e]
		if obj == nil {
			obj = x.pkg.info.Defs[e]
		}
		if obj == nil {
			break
		}
		if k, ok := x.alias[obj]; ok {
			return k
		}
		return objKey{obj: obj}
	case *ast.SelectorExpr:
		base := x.keyOf(e.X)
		if base.known() {
			return objKey{obj: base.obj, path: base.path + "." + e.Sel.Name}
		}
	case *ast.ParenExpr:
		return x.keyOf(e.X)
	case *ast.StarExpr:
		return x.keyOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return x.keyOf(e.X)
		}
	}
	return objKey{path: fmt.Sprintf("anon@%v", x.pos(e.Pos()))}
}

// access records a shared-variable access candidate: a read or write of
// a plain variable (or a field path rooted at one), excluding
// synchronization objects, channels, and functions — those are modeled
// by their own operations. Reports whether the expression was consumed.
// The lockset snapshot happens in emit; whether the variable is actually
// shared is decided by filterAccesses once the whole walk is done.
func (x *extractor) access(e ast.Expr, kind OpKind, fr *frame) bool {
	key := x.accessKeyOf(e)
	if !key.known() {
		return false
	}
	v, ok := key.obj.(*types.Var)
	if !ok || v.IsField() || v.Name() == "_" {
		return false
	}
	if x.skipAccessType(e) {
		return false
	}
	x.emit(Op{Kind: kind, G: fr.g, Key: key, Pos: x.pos(e.Pos()), Add: -1})
	return true
}

// accessKeyOf resolves the identity of an accessed variable: element
// accesses (`m[k]`, `xs[i]`) collapse to their base object, then keyOf's
// selector-path resolution applies.
func (x *extractor) accessKeyOf(e ast.Expr) objKey {
	switch e := e.(type) {
	case *ast.IndexExpr:
		return x.accessKeyOf(e.X)
	case *ast.ParenExpr:
		return x.accessKeyOf(e.X)
	}
	return x.keyOf(e)
}

// skipAccessType reports whether an expression's type puts it outside
// the data-access model: channels and sync objects have their own
// operation kinds, and function/method values are not data.
func (x *extractor) skipAccessType(e ast.Expr) bool {
	tv, ok := x.pkg.info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	switch tv.Type.Underlying().(type) {
	case *types.Chan, *types.Signature:
		return true
	}
	if _, isSync := x.syncType(e); isSync {
		return true
	}
	return false
}

// isPackageLevel reports whether an object is a package-level variable.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// filterAccesses drops read/write operations on variables that are not
// shared: only package-level variables and locals touched by more than
// one goroutine (captured across a go boundary) stay in the model.
// Everything the walk recorded on purely goroutine-local state is
// removed, and the operation indices the model refers to (spawn ops,
// locksets) are remapped.
func (raw *rawModel) filterAccesses() {
	firstG := make(map[objKey]int)
	shared := make(map[objKey]bool)
	for _, op := range raw.ops {
		if op.Kind != OpRead && op.Kind != OpWrite {
			continue
		}
		if g, ok := firstG[op.Key]; !ok {
			firstG[op.Key] = op.G
		} else if g != op.G {
			shared[op.Key] = true
		}
	}
	remap := make([]int, len(raw.ops))
	kept := raw.ops[:0]
	for i, op := range raw.ops {
		if (op.Kind == OpRead || op.Kind == OpWrite) &&
			!shared[op.Key] && !isPackageLevel(op.Key.obj) {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, op)
	}
	raw.ops = kept
	for i := range raw.ops {
		ls := raw.ops[i].Locks
		for j, l := range ls {
			ls[j] = remap[l] // lock ops are never dropped
		}
	}
	for i := range raw.gors {
		if s := raw.gors[i].SpawnOp; s >= 0 {
			raw.gors[i].SpawnOp = remap[s] // spawns are never dropped
		}
	}
}

// displayName renders a key for messages and class names.
func (k objKey) displayName() string {
	if k.obj != nil {
		return k.obj.Name() + k.path
	}
	return "?"
}
