package gofront_test

import (
	"os"
	"path/filepath"
	"testing"

	"gem/internal/gofront"
	"gem/internal/race"
)

// FuzzExtract feeds arbitrary source through the whole front end —
// parse, type-check, extract, compile, diagnose, race-check. The
// invariant is "never panic": malformed or half-typed input must
// degrade to fewer events (and a parse error), never to a crash; and
// whatever the race pass reports must be unordered in the extracted
// partial order. Seeded with every fixture (this package's and the race
// corpus) so the mutator starts from realistic concurrent Go with
// shared-variable accesses and lockset-bearing regions.
func FuzzExtract(f *testing.F) {
	for _, glob := range []string{
		filepath.Join("testdata", "src", "*"),
		filepath.Join("..", "race", "testdata", "src", "*"),
	} {
		dirs, err := filepath.Glob(glob)
		if err != nil {
			f.Fatal(err)
		}
		for _, dir := range dirs {
			src, err := os.ReadFile(filepath.Join(dir, "main.go"))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("package p\nfunc f(ch chan int) { go func() { <-ch }(); close(ch) }\n")
	f.Add("package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f() { mu.Lock(); defer mu.Unlock() }\n")
	f.Add("package p\nimport \"sync\"\nvar mu sync.Mutex\nvar n int\n" +
		"func f() { go func() { mu.Lock(); n++; mu.Unlock() }(); mu.Lock(); _ = n; mu.Unlock() }\n")
	f.Add("package p\nimport \"sync\"\nvar rw sync.RWMutex\nvar m map[int]int\n" +
		"func g() { go func() { rw.RLock(); _ = m[1]; rw.RUnlock() }(); rw.Lock(); m = nil; rw.Unlock() }\n")

	f.Fuzz(func(t *testing.T, src string) {
		res, err := gofront.AnalyzeSource("fuzz.go", src)
		if err != nil {
			return // parse error: fine
		}
		// Whatever was extracted must be internally consistent.
		for _, m := range res.Models {
			if m.Comp == nil || m.Spec == nil {
				t.Fatalf("model %s missing comp/spec", m.Name)
			}
			if m.Comp.NumEvents() != len(m.Ops) {
				t.Fatalf("model %s: %d events for %d ops", m.Name, m.Comp.NumEvents(), len(m.Ops))
			}
			// The race pass must not panic, and must never report a pair
			// the extracted partial order already orders.
			for _, p := range race.Pairs(m) {
				a, b := m.EventOf[p.A], m.EventOf[p.B]
				if m.Comp.Temporal(a, b) || m.Comp.Temporal(b, a) {
					t.Fatalf("model %s: race pair %s (%d,%d) is ordered in the extracted model",
						m.Name, p.Code, p.A, p.B)
				}
			}
		}
	})
}
