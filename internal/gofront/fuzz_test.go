package gofront_test

import (
	"os"
	"path/filepath"
	"testing"

	"gem/internal/gofront"
)

// FuzzExtract feeds arbitrary source through the whole front end —
// parse, type-check, extract, compile, diagnose. The invariant is
// "never panic": malformed or half-typed input must degrade to fewer
// events (and a parse error), never to a crash. Seeded with every
// fixture so the mutator starts from realistic concurrent Go.
func FuzzExtract(f *testing.F) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		f.Fatal(err)
	}
	for _, dir := range dirs {
		src, err := os.ReadFile(filepath.Join(dir, "main.go"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("package p\nfunc f(ch chan int) { go func() { <-ch }(); close(ch) }\n")
	f.Add("package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f() { mu.Lock(); defer mu.Unlock() }\n")

	f.Fuzz(func(t *testing.T, src string) {
		res, err := gofront.AnalyzeSource("fuzz.go", src)
		if err != nil {
			return // parse error: fine
		}
		// Whatever was extracted must be internally consistent.
		for _, m := range res.Models {
			if m.Comp == nil || m.Spec == nil {
				t.Fatalf("model %s missing comp/spec", m.Name)
			}
			if m.Comp.NumEvents() != len(m.Ops) {
				t.Fatalf("model %s: %d events for %d ops", m.Name, m.Comp.NumEvents(), len(m.Ops))
			}
		}
	})
}
