// Two goroutines acquire the same two mutexes in opposite orders: a
// classic lock-ordering inversion (GEM014).
package main

import "sync"

func main() {
	var mu1, mu2 sync.Mutex
	go func() {
		mu1.Lock()
		mu2.Lock()
		mu2.Unlock()
		mu1.Unlock()
	}()
	go func() {
		mu2.Lock()
		mu1.Lock()
		mu1.Unlock()
		mu2.Unlock()
	}()
}
