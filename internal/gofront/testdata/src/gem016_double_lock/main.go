// The goroutine locks a mutex it already holds: sync.Mutex is not
// reentrant, and the unlock that would release it can only run after the
// second Lock returns (GEM016).
package main

import "sync"

func main() {
	var mu sync.Mutex
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
