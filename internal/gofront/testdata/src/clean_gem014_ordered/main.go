// Lookalike for gem014_lock_inversion with the defect repaired: both
// goroutines acquire the mutexes in the same order.
package main

import "sync"

func main() {
	var mu1, mu2 sync.Mutex
	go func() {
		mu1.Lock()
		mu2.Lock()
		mu2.Unlock()
		mu1.Unlock()
	}()
	go func() {
		mu1.Lock()
		mu2.Lock()
		mu2.Unlock()
		mu1.Unlock()
	}()
}
