// Lookalike for gem015_crossed_channels with the defect repaired: the
// channels form a pipeline (main sends a, the worker forwards to b, main
// receives b) instead of a crossed rendezvous.
package main

func main() {
	a := make(chan int)
	b := make(chan int)
	go func() {
		<-a
		b <- 1
	}()
	a <- 1
	<-b
}
