// Two goroutines each receive before sending on crossed unbuffered
// channels: neither send can start until the other completes, so both
// goroutines block forever (GEM015).
package main

func main() {
	a := make(chan int)
	b := make(chan int)
	go func() {
		<-a
		b <- 1
	}()
	go func() {
		<-b
		a <- 1
	}()
}
