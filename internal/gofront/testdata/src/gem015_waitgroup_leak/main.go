// The WaitGroup counter is incremented by two but only one Done exists:
// Wait can never return (GEM015).
package main

import "sync"

func main() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		wg.Done()
	}()
	wg.Wait()
}
