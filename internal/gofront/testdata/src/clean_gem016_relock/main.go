// Lookalike for gem016_double_lock with the defect repaired: the second
// Lock happens after the first critical section is released, which is an
// ordinary re-acquisition.
package main

import "sync"

func main() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	mu.Lock()
	mu.Unlock()
}
