// Reader locks are shared: one goroutine may hold two overlapping
// RLock regions on the same RWMutex without self-deadlock, so this must
// not be flagged as a double lock (GEM016).
package main

import "sync"

var mu sync.RWMutex

func main() {
	mu.RLock()
	mu.RLock()
	mu.RUnlock()
	mu.RUnlock()
}
