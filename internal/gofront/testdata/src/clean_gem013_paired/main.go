// Lookalike for gem013_unpaired_recv with the defect repaired: the main
// goroutine sends the value the spawned goroutine receives.
package main

func main() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	ch <- 1
}
