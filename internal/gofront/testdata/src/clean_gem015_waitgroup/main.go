// Lookalike for gem015_waitgroup_leak with the defect repaired: the Add
// total matches the number of Done calls.
package main

import "sync"

func main() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		wg.Done()
	}()
	go func() {
		wg.Done()
	}()
	wg.Wait()
}
