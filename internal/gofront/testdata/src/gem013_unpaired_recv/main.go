// A goroutine receives from a channel nothing ever sends on or closes:
// the receive can never complete (GEM013).
package main

func main() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
}
