package gofront_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem/internal/gofront"
)

var update = flag.Bool("update", false, "rewrite golden files from current gofront output")

// fixtureDirs returns the fixture package directories under testdata/src.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected at least 10 fixture packages in testdata/src, found %d", len(dirs))
	}
	return dirs
}

func renderDiags(res *gofront.Result) string {
	var sb strings.Builder
	for _, d := range res.Diags {
		fmt.Fprintf(&sb, "%s:%s\n", d.File, d.Diagnostic)
	}
	return sb.String()
}

func renderDump(res *gofront.Result) string {
	var sb strings.Builder
	for _, m := range res.Models {
		gofront.DumpSpec(&sb, m)
	}
	return sb.String()
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGolden analyzes every fixture package and compares both the
// diagnostics and the -dump-spec rendering against golden files.
// Defective fixtures (gemNNN_*) must surface exactly the code they are
// named for; clean_* lookalikes must produce no diagnostics at all.
// Regenerate with: go test ./internal/gofront -run Golden -update
func TestGolden(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			res, err := gofront.AnalyzeDir(dir)
			if err != nil {
				t.Fatalf("analyze %s: %v", dir, err)
			}
			if len(res.Pkg.TypeErrs) > 0 {
				t.Fatalf("fixture %s has type errors: %v", dir, res.Pkg.TypeErrs)
			}
			got := renderDiags(res)

			if strings.HasPrefix(name, "clean_") {
				if got != "" {
					t.Errorf("clean fixture %s produced diagnostics:\n%s", dir, got)
				}
			} else {
				wantCode := strings.ToUpper(name[:strings.Index(name, "_")])
				codes := make(map[string]bool)
				for _, d := range res.Diags {
					codes[string(d.Code)] = true
				}
				if !codes[wantCode] || len(codes) != 1 {
					t.Errorf("fixture %s must surface exactly %s; diagnostics:\n%s", dir, wantCode, got)
				}
			}

			checkGolden(t, filepath.Join("testdata", name+".golden"), got)
			checkGolden(t, filepath.Join("testdata", name+".dump.golden"), renderDump(res))
		})
	}
}

// TestExpandPatterns checks the /... walk finds no packages inside
// testdata (the go-tool convention) while a plain path is taken
// verbatim.
func TestExpandPatterns(t *testing.T) {
	dirs, err := gofront.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk entered testdata: %s", d)
		}
	}
	plain, err := gofront.ExpandPatterns([]string{filepath.Join("testdata", "src", "gem013_unpaired_recv")})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 {
		t.Fatalf("plain pattern expanded to %v", plain)
	}
}
