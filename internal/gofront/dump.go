package gofront

import (
	"fmt"
	"io"
	"strings"
)

// DumpSpec renders the extracted model — elements, classes,
// restrictions, the computation with its enable edges, and any pairing
// edges dropped to keep the temporal order acyclic — in a deterministic
// textual form. It is the -dump-spec output and the golden-test surface:
// the dump pins down exactly what the front end extracted, independent
// of which diagnostics fire.
func DumpSpec(w io.Writer, m *Model) {
	fmt.Fprintf(w, "model %s\n", m.Name)
	for _, gor := range m.Gors {
		d, ok := m.Spec.Element(gor.Name)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  element %s", gor.Name)
		if len(d.Events) > 0 {
			var cs []string
			for _, ec := range d.Events {
				cs = append(cs, ec.Name)
			}
			fmt.Fprintf(w, ": %s", strings.Join(cs, ", "))
		}
		fmt.Fprintln(w)
	}
	for _, r := range m.Spec.Restrictions() {
		fmt.Fprintf(w, "  restriction %s: %s\n", r.Name, r.F)
	}
	for _, line := range strings.Split(strings.TrimRight(m.Comp.String(), "\n"), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}
	for _, e := range m.Dropped {
		fmt.Fprintf(w, "  dropped enable: %s |> %s\n",
			m.Comp.Event(e[0]).Name(), m.Comp.Event(e[1]).Name())
	}
}
