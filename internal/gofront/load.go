package gofront

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gem/internal/obs"
)

// Package is one loaded Go package: the parsed files plus the go/types
// resolution the extractor consults. Type errors are collected, not
// fatal — extraction degrades gracefully on partial type information (a
// call whose receiver type is unknown simply produces no event).
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	// TypeErrs are the type-checker's complaints, in reporting order.
	// They are surfaced to the user as load warnings but do not stop the
	// analysis.
	TypeErrs []error

	info *types.Info
}

// cachingImporter wraps the source importer with a lock and a cache so
// concurrent package loads (the -j fan-out) share one type-checked copy
// of each dependency. The source importer compiles dependencies from
// GOROOT source, so no pre-built export data is required.
type cachingImporter struct {
	mu    sync.Mutex
	under types.Importer
	pkgs  map[string]*types.Package
	errs  map[string]error
}

var sharedImporter = &cachingImporter{
	under: importer.ForCompiler(token.NewFileSet(), "source", nil),
	pkgs:  make(map[string]*types.Package),
	errs:  make(map[string]error),
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if p, ok := ci.pkgs[path]; ok {
		return p, nil
	}
	if err, ok := ci.errs[path]; ok {
		return nil, err
	}
	p, err := ci.under.Import(path)
	if err != nil {
		ci.errs[path] = err
		return nil, err
	}
	ci.pkgs[path] = p
	return p, nil
}

// ExpandPatterns resolves gemgo's package patterns to package
// directories: a plain path names one directory, a path ending in /...
// walks the tree rooted there collecting every directory that contains
// .go files. Like the go tool, the walk skips testdata, vendor, and
// dot/underscore directories — but an explicit plain path is taken
// verbatim, which is how the fixture corpus under testdata/ is analyzed.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, walk := strings.CutSuffix(pat, "/...")
		if root == "" {
			root = "."
		}
		fi, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("gofront: %s is not a directory", root)
		}
		if !walk {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && goSource(e.Name()) {
			return true
		}
	}
	return false
}

func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// LoadDir parses and type-checks the non-test .go files of one
// directory. Parse errors are fatal (the extractor needs syntax); type
// errors are collected on the returned package.
func LoadDir(dir string) (*Package, error) {
	_, sp := obs.StartSpan(nil, "gofront.load")
	defer sp.End()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && goSource(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("gofront: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheck(dir, fset, files), nil
}

// LoadSource loads a single in-memory file as its own package — the
// entry point the fuzzer and tests use.
func LoadSource(filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return typeCheck(filepath.Dir(filename), fset, []*ast.File{f}), nil
}

func typeCheck(dir string, fset *token.FileSet, files []*ast.File) *Package {
	pkg := &Package{
		Dir:   dir,
		Fset:  fset,
		Files: files,
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	conf := types.Config{
		Importer: sharedImporter,
		Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	// Check fills the Info maps as far as it gets even when it returns an
	// error; the Error handler above keeps it going past the first one.
	_, _ = conf.Check(pkg.Name, fset, files, pkg.info)
	return pkg
}
