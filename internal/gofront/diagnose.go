package gofront

import (
	"fmt"

	"gem/internal/analyze"
	"gem/internal/lint"
)

// The GEM013–GEM016 diagnostics are all instances of one question: can a
// mandatory wait ever be satisfied? GEM013 is the degenerate case — a
// wait with no candidate partner at all. The rest are circular waits,
// found by running the same WaitGraph machinery GEM010 uses over the
// operations: program order contributes "later waits for earlier" edges,
// the channel/WaitGroup/lock pairings contribute the cross-goroutine
// waits, and a strongly connected component mixing program order with a
// synchronization wait is a schedule no scheduler can complete. The kind
// of synchronization edge in the cycle picks the code: a double-lock
// edge means GEM016, a channel or WaitGroup edge means GEM015. GEM014 is
// the same cycle search one level up, over the mutexes themselves, with
// "acquired-while-holding" edges.
const (
	kindSeq = iota
	kindChan
	kindWG
	kindLock
)

func (m *Model) diagnose() {
	m.checkUnpaired()
	m.checkCircularWaits()
	m.checkLockOrder()
	m.checkWaitGroupCounts()
	m.checkUnreleasedDoubleLocks()
}

func (m *Model) report(op int, code lint.Code, subject, format string, args ...any) {
	info, _ := lint.Info(code)
	pos := m.Ops[op].Pos
	m.Diags = append(m.Diags, lint.FileDiagnostic{
		File: pos.Filename,
		Diagnostic: lint.Diagnostic{
			Code:     code,
			Severity: info.Severity,
			Subject:  subject,
			Message:  fmt.Sprintf(format, args...),
			Pos:      lint.Pos{Line: pos.Line, Col: pos.Column},
		},
	})
}

// desc renders an operation in the paper's event notation
// ("main.g1.recv_ch^0"), which the dump and the enable edges also use.
func (m *Model) desc(op int) string {
	return m.Comp.Event(m.EventOf[op]).Name()
}

func (m *Model) goroutineSubject(op int) string {
	return "goroutine " + m.Gors[m.Ops[op].G].Name
}

// checkUnpaired reports GEM013: a channel operation with no possible
// partner anywhere in the model. Such an operation does not even get a
// wait-for edge — there is nothing to wait for — so the cycle search
// cannot see it; it is the "empty domain" case of the same question.
func (m *Model) checkUnpaired() {
	for _, ci := range m.chans {
		n := m.objName(ci.key)
		if len(ci.recvs) > 0 && len(ci.sends) == 0 && len(ci.closes) == 0 {
			r := ci.recvs[0]
			m.report(r, lint.CodeChanNoPartner, m.goroutineSubject(r),
				"receive on %s can never complete: %s has no send and no close anywhere in %s",
				n, n, m.Func)
		}
		if len(ci.sends) > 0 && len(ci.recvs) == 0 {
			// A buffered channel absorbs cap sends; only a statically
			// certain overflow (or any unbuffered send) is partnerless.
			overflow := len(ci.sends) > ci.cap
			for _, s := range ci.sends {
				if m.Ops[s].InLoop {
					overflow = true
				}
			}
			if overflow {
				s := ci.sends[0]
				if ci.cap == 0 {
					m.report(s, lint.CodeChanNoPartner, m.goroutineSubject(s),
						"send on %s can never complete: %s is unbuffered and has no receive anywhere in %s",
						n, n, m.Func)
				} else {
					m.report(s, lint.CodeChanNoPartner, m.goroutineSubject(s),
						"send on %s can never complete: %s has no receive anywhere in %s and its buffer (cap %d) fills up",
						n, n, m.Func, ci.cap)
				}
			}
		}
	}
}

// waitGraph builds the operation-level wait-for graph: an edge op → dep
// reads "op cannot complete until dep has completed".
func (m *Model) waitGraph() *analyze.WaitGraph {
	g := analyze.NewWaitGraph(len(m.Ops))
	edge := func(from, to, kind int, format string, args ...any) {
		if from < 0 || to < 0 || from == to {
			return
		}
		g.AddEdge(analyze.WaitEdge{
			From: from, To: to, Kind: kind, Rank: from,
			Label: fmt.Sprintf(format, args...),
		})
	}
	// Program order: each operation waits for its predecessor on the same
	// goroutine; a goroutine's first operation waits for its go statement.
	prev := make(map[int]int)
	for i, op := range m.Ops {
		p, ok := prev[op.G]
		if !ok {
			p = m.Gors[op.G].SpawnOp
		}
		edge(i, p, kindSeq, "%s runs after %s on %s",
			m.desc(i), descOr(m, p), m.Gors[op.G].Name)
		prev[op.G] = i
	}
	// Channel waits. A receive waits for its matched send (or close); an
	// unbuffered send waits for the receiver to arrive — i.e. for the
	// receive's program-order predecessor; a buffered send k waits for
	// receive k−cap to have freed a slot.
	for _, ci := range m.chans {
		n := m.objName(ci.key)
		recvIdx := make(map[int]int)
		for i, r := range ci.recvs {
			recvIdx[r] = i
		}
		for _, p := range ci.pairs {
			s, r := p[0], p[1]
			edge(r, s, kindChan, "%s waits for %s (channel %s)", m.desc(r), m.desc(s), n)
		}
		for _, p := range ci.closePairs {
			c, r := p[0], p[1]
			edge(r, c, kindChan, "%s waits for %s (channel %s)", m.desc(r), m.desc(c), n)
		}
		for i, s := range ci.sends {
			j := i - ci.cap
			if j < 0 || j >= len(ci.recvs) {
				continue
			}
			r := ci.recvs[j]
			if ci.cap == 0 {
				// Rendezvous: the send completes when the receiver reaches
				// the matching receive, so it waits for everything before it.
				p := prevOp(m, r)
				edge(s, p, kindChan, "%s waits for %s to reach %s (unbuffered %s)",
					m.desc(s), descOr(m, p), m.desc(r), n)
			} else {
				edge(s, r, kindChan, "%s waits for %s to free a buffer slot (channel %s, cap %d)",
					m.desc(s), m.desc(r), n, ci.cap)
			}
		}
	}
	// WaitGroup joins: a Wait waits for every Done.
	for _, wi := range m.wgs {
		n := m.objName(wi.key)
		for _, w := range wi.waits {
			for _, d := range wi.dones {
				edge(w, d, kindWG, "%s waits for %s (WaitGroup %s)", m.desc(w), m.desc(d), n)
			}
		}
	}
	// Double locks: the inner Lock waits for the unlock releasing the
	// already-held region — which program order puts after it.
	for _, mi := range m.mutexes {
		n := m.objName(mi.key)
		for _, d := range mi.doubles {
			if d.releasedBy >= 0 {
				edge(d.lock, d.releasedBy, kindLock,
					"%s waits for %s to release %s (held since %s)",
					m.desc(d.lock), m.desc(d.releasedBy), n, m.desc(d.heldSince))
			}
		}
	}
	return g
}

func descOr(m *Model, op int) string {
	if op < 0 {
		return "start"
	}
	return m.desc(op)
}

// prevOp returns the operation before op on its goroutine, falling back
// to the goroutine's spawn operation (-1 at the root's start).
func prevOp(m *Model, op int) int {
	if p := prevOnSameG(m.Ops, op); p >= 0 {
		return p
	}
	return m.Gors[m.Ops[op].G].SpawnOp
}

// checkCircularWaits runs the cycle search and classifies each circular
// wait: a double-lock edge makes it GEM016, otherwise a channel or
// WaitGroup edge makes it GEM015. Pure program-order components cannot
// exist (program order is acyclic), so every reported cycle mixes a real
// synchronization wait with the order that makes it unbreakable.
func (m *Model) checkCircularWaits() {
	for _, cycle := range m.waitGraph().Cycles() {
		switch {
		case cycle.HasKind(kindLock):
			at := cycle.MinRankOfKind(kindLock)
			d := m.doubleLockAt(at)
			m.report(at, lint.CodeDoubleLock, m.goroutineSubject(at),
				"double lock of %s: %s already holds it (locked at %s as %s) and the releasing unlock can only run later: %s",
				m.objName(m.Ops[at].Key), m.Gors[m.Ops[at].G].Name,
				posOf(m, d.heldSince), m.desc(d.heldSince), cycle.Describe())
		case cycle.HasKind(kindChan) || cycle.HasKind(kindWG):
			at := cycle.MinRankOfKind(kindChan)
			if wg := cycle.MinRankOfKind(kindWG); at < 0 || (wg >= 0 && wg < at) {
				at = wg
			}
			m.report(at, lint.CodeBlockForever, m.goroutineSubject(at),
				"goroutine can block forever: %s", cycle.Describe())
		}
	}
}

func (m *Model) doubleLockAt(lock int) doubleLock {
	for _, mi := range m.mutexes {
		for _, d := range mi.doubles {
			if d.lock == lock {
				return d
			}
		}
	}
	return doubleLock{lock: lock, heldSince: lock, releasedBy: -1}
}

func posOf(m *Model, op int) string {
	p := m.Ops[op].Pos
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}

// checkUnreleasedDoubleLocks reports the GEM016 variant the cycle search
// cannot express: the held region has no unlock at all, so the inner
// Lock's wait has an empty target set rather than a cyclic one.
func (m *Model) checkUnreleasedDoubleLocks() {
	for _, mi := range m.mutexes {
		for _, d := range mi.doubles {
			if d.releasedBy >= 0 {
				continue
			}
			m.report(d.lock, lint.CodeDoubleLock, m.goroutineSubject(d.lock),
				"double lock of %s: %s already holds it (locked at %s as %s) and never releases it",
				m.objName(m.Ops[d.lock].Key), m.Gors[m.Ops[d.lock].G].Name,
				posOf(m, d.heldSince), m.desc(d.heldSince))
		}
	}
}

// checkLockOrder reports GEM014: the cycle search over the mutex-order
// graph, whose edge a → b records some goroutine acquiring b while
// holding a. A strongly connected component is an ordering inversion —
// two goroutines interleaving their acquires can each end up holding the
// lock the other needs.
func (m *Model) checkLockOrder() {
	idx := make(map[objKey]int)
	var keys []objKey
	for _, mi := range m.mutexes {
		idx[mi.key] = len(keys)
		keys = append(keys, mi.key)
	}
	if len(keys) < 2 {
		return
	}
	g := analyze.NewWaitGraph(len(keys))
	// anchors[a][b] is the acquire operation that created edge a → b
	// (first one wins, for deterministic reporting).
	anchors := make(map[[2]int]int)
	held := make(map[int][]objKey)
	for i, op := range m.Ops {
		if !op.Key.known() {
			continue
		}
		if _, isMutex := idx[op.Key]; !isMutex {
			continue
		}
		switch op.Kind {
		case OpLock, OpRLock:
			// Reader acquisitions participate in the ordering graph too: an
			// RLock blocks behind a pending writer, so acquiring one while
			// holding another lock still closes inversion cycles.
			for _, h := range held[op.G] {
				a, b := idx[h], idx[op.Key]
				if a == b {
					continue
				}
				if _, ok := anchors[[2]int{a, b}]; !ok {
					anchors[[2]int{a, b}] = i
					g.AddEdge(analyze.WaitEdge{
						From: a, To: b, Kind: 0, Rank: i,
						Label: fmt.Sprintf("%s locks %s at %s while holding %s",
							m.Gors[op.G].Name, m.objName(op.Key), posOf(m, i), m.objName(h)),
					})
				}
			}
			held[op.G] = append(held[op.G], op.Key)
		case OpUnlock, OpRUnlock:
			hs := held[op.G]
			for j := len(hs) - 1; j >= 0; j-- {
				if hs[j] == op.Key {
					held[op.G] = append(hs[:j:j], hs[j+1:]...)
					break
				}
			}
		}
	}
	for _, cycle := range g.Cycles() {
		at := anchors[[2]int{cycle.Edges[0].From, cycle.Edges[0].To}]
		for _, e := range cycle.Edges {
			if a := anchors[[2]int{e.From, e.To}]; a < at {
				at = a
			}
		}
		m.report(at, lint.CodeLockInversion, "function "+m.Func,
			"lock-ordering inversion: %s", cycle.Describe())
	}
}

// checkWaitGroupCounts reports the counting variant of GEM015: a Wait
// whose counter can never reach zero because the constant Add total
// exceeds the number of Done calls that exist.
func (m *Model) checkWaitGroupCounts() {
	for _, wi := range m.wgs {
		if len(wi.waits) == 0 || wi.addTotal < 0 || wi.addTotal <= len(wi.dones) {
			continue
		}
		w := wi.waits[0]
		m.report(w, lint.CodeBlockForever, m.goroutineSubject(w),
			"%s.Wait() can never return: Add() total is %d but only %d Done() call(s) exist",
			m.objName(wi.key), wi.addTotal, len(wi.dones))
	}
}
