// Package gofront is the Go front end: a static-analysis pass that
// extracts GEM models from real Go source. It recognizes goroutine
// spawns, channel make/send/receive/close, sync.Mutex and sync.RWMutex
// lock–unlock pairs (reader and writer modes), sync.WaitGroup
// Add/Done/Wait, and shared-variable reads and writes (package-level
// variables and locals crossing a go boundary, each carrying the
// lockset held at the access), and compiles them into GEM computations
// — each goroutine an element, each operation an event, control flow
// and channel/lock pairing the enable edges — so the legality checker,
// the deep analyzer, and the lattice engine run on real code unchanged.
// On top of the extracted wait-for structure it reports four
// Go-specific diagnostics:
//
//	GEM013  channel operation with no possible partner
//	GEM014  lock-ordering inversion between mutexes
//	GEM015  goroutine that can block forever (circular or unsatisfiable wait)
//	GEM016  double lock of a non-reentrant mutex
//
// The companion race pass (internal/race) consumes the same models and
// adds GEM018–GEM020 from the may-happen-in-parallel relation of the
// extracted partial order.
//
// The analysis is intentionally flow-naive — every statement is assumed
// to execute once, in source order — which makes it fast, deterministic,
// and free of false GEM013s on the code shapes it models (straight-line
// goroutine pipelines); anything it cannot resolve degrades to "no
// event", never to a wrong one.
package gofront

import (
	"gem/internal/lint"
	"gem/internal/obs"
)

// Result is the analysis outcome for one package.
type Result struct {
	Pkg    *Package
	Models []*Model
	// Diags are all models' diagnostics in the canonical order (file,
	// position, code, subject).
	Diags []lint.FileDiagnostic
}

// Analyze extracts and diagnoses every root function of a loaded package.
func Analyze(pkg *Package) *Result {
	_, sp := obs.StartSpan(nil, "gofront.extract")
	funcs := packageFuncs(pkg)
	res := &Result{Pkg: pkg}
	var raws []*rawModel
	for _, fd := range roots(pkg, funcs) {
		raw := extractFunc(pkg, funcs, fd)
		if len(raw.ops) == 0 {
			continue
		}
		raws = append(raws, raw)
	}
	sp.End()

	_, sp = obs.StartSpan(nil, "gofront.diagnose")
	defer sp.End()
	for _, raw := range raws {
		m, err := buildModel(pkg, raw)
		if err != nil {
			// Cannot happen by construction; skip rather than report a
			// bogus finding.
			continue
		}
		obs.Count("gofront.models", 1)
		res.Models = append(res.Models, m)
		res.Diags = append(res.Diags, m.Diags...)
	}
	obs.Count("gofront.diags", int64(len(res.Diags)))
	lint.SortFileDiagnostics(res.Diags)
	return res
}

// AnalyzeDir loads one package directory and analyzes it.
func AnalyzeDir(dir string) (*Result, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return Analyze(pkg), nil
}

// AnalyzeSource analyzes a single in-memory file as its own package.
func AnalyzeSource(filename, src string) (*Result, error) {
	pkg, err := LoadSource(filename, src)
	if err != nil {
		return nil, err
	}
	return Analyze(pkg), nil
}
