// Command benchjson converts `go test -bench` text output (read from
// stdin) into the repository's BENCH_<date>.json record: a host section
// (GOMAXPROCS and NumCPU, so single-CPU hosts are identifiable in the
// benchmark trajectory, plus goos/goarch/cpu parsed from the benchmark
// header), the benchmark table, and — when -prev names an earlier
// record — a delta section with per-benchmark new/old ratios for ns/op
// and B/op. The previous record may be in this format or in the
// original bare-array format the awk pipeline emitted.
//
// The -compare A,B flag (repeatable) pairs two benchmarks of the same
// run — typically a cold/warm pair like
// BenchmarkE14WarmStore/cold,BenchmarkE14WarmStore/warm — and adds a
// compare section with B's new/old ratios against A plus the A-over-B
// speedup. An optional >=N suffix (A,B>=5) turns the report into a
// gate: the run fails unless the speedup reaches the bound.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Host identifies the machine a record was taken on.
type Host struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPU        string `json:"cpu,omitempty"`
}

// Delta compares one benchmark against the previous record; ratios are
// new/old, so values below 1 are improvements.
type Delta struct {
	Name        string   `json:"name"`
	NsRatio     *float64 `json:"ns_ratio,omitempty"`
	BytesRatio  *float64 `json:"bytes_ratio,omitempty"`
	AllocsRatio *float64 `json:"allocs_ratio,omitempty"`
}

// Comparison is one -compare pair resolved against the current run: the
// To benchmark's ratios with From as the baseline (the same new/old
// convention as Delta, so values below 1 are improvements) plus the
// From-over-To speedup — the number a cold/warm pair is quoted by.
type Comparison struct {
	From string `json:"from"`
	To   string `json:"to"`
	Delta
	Speedup *float64 `json:"speedup,omitempty"`
}

// Report is the full BENCH_<date>.json document.
type Report struct {
	Host       Host         `json:"host"`
	Benchmarks []Bench      `json:"benchmarks"`
	DeltaVs    string       `json:"delta_vs,omitempty"`
	Delta      []Delta      `json:"delta,omitempty"`
	Compare    []Comparison `json:"compare,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	prev := fs.String("prev", "", "previous BENCH_*.json record to compute the delta section against")
	var asserts assertList
	fs.Var(&asserts, "assert",
		"fail unless the named benchmark's ns/op and allocs/op ratios vs -prev "+
			"stay within the bound, e.g. 'BenchmarkE4MonitorRW/j1<=1.10' (repeatable)")
	var compares compareList
	fs.Var(&compares, "compare",
		"pair two benchmarks of this run, reporting B-vs-A ratios and the A-over-B "+
			"speedup, e.g. 'Bench/cold,Bench/warm'; add >=N to fail below that speedup (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(asserts) > 0 && *prev == "" {
		return fmt.Errorf("-assert needs -prev to compare against")
	}
	report, err := parse(in)
	if err != nil {
		return err
	}
	report.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.Host.NumCPU = runtime.NumCPU()
	if *prev != "" {
		old, err := loadPrevious(*prev)
		if err != nil {
			return err
		}
		report.DeltaVs = filepath.Base(*prev)
		report.Delta = deltas(report.Benchmarks, old)
	}
	report.Compare, err = comparisons(compares, report.Benchmarks)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	// Assertions run after the record is written, so a regression still
	// leaves the full record behind for diagnosis; only the exit status
	// reports it.
	if err := checkAsserts(asserts, report.Delta); err != nil {
		return err
	}
	return checkCompares(compares, report.Compare)
}

// assertion is one -assert bound: the benchmark's new/old ns and allocs
// ratios must not exceed Max.
type assertion struct {
	Name string
	Max  float64
}

type assertList []assertion

func (a *assertList) String() string {
	parts := make([]string, len(*a))
	for i, s := range *a {
		parts[i] = fmt.Sprintf("%s<=%g", s.Name, s.Max)
	}
	return strings.Join(parts, ",")
}

func (a *assertList) Set(v string) error {
	name, bound, ok := strings.Cut(v, "<=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME<=RATIO, got %q", v)
	}
	max, err := strconv.ParseFloat(bound, 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("bad ratio in %q", v)
	}
	*a = append(*a, assertion{Name: name, Max: max})
	return nil
}

// checkAsserts verifies every -assert bound against the delta section.
// A benchmark with no delta entry fails: an assertion that silently
// never compares anything would defend nothing.
func checkAsserts(asserts []assertion, delta []Delta) error {
	byName := make(map[string]Delta, len(delta))
	for _, d := range delta {
		byName[d.Name] = d
	}
	for _, a := range asserts {
		d, ok := byName[a.Name]
		if !ok {
			return fmt.Errorf("assert %s: benchmark not present in both records", a.Name)
		}
		if d.NsRatio == nil {
			return fmt.Errorf("assert %s: no ns/op ratio to compare", a.Name)
		}
		if *d.NsRatio > a.Max {
			return fmt.Errorf("assert %s: ns/op ratio %.3f exceeds bound %g", a.Name, *d.NsRatio, a.Max)
		}
		if d.AllocsRatio != nil && *d.AllocsRatio > a.Max {
			return fmt.Errorf("assert %s: allocs/op ratio %.3f exceeds bound %g", a.Name, *d.AllocsRatio, a.Max)
		}
	}
	return nil
}

// comparePair is one -compare request: report To against From within
// the same run; MinSpeedup, when nonzero, makes the pair a gate.
type comparePair struct {
	From, To   string
	MinSpeedup float64
}

type compareList []comparePair

func (c *compareList) String() string {
	parts := make([]string, len(*c))
	for i, p := range *c {
		parts[i] = p.From + "," + p.To
		if p.MinSpeedup > 0 {
			parts[i] += fmt.Sprintf(">=%g", p.MinSpeedup)
		}
	}
	return strings.Join(parts, " ")
}

func (c *compareList) Set(v string) error {
	spec := v
	var min float64
	if s, bound, ok := strings.Cut(v, ">="); ok {
		m, err := strconv.ParseFloat(bound, 64)
		if err != nil || m <= 0 {
			return fmt.Errorf("bad speedup bound in %q", v)
		}
		spec, min = s, m
	}
	from, to, ok := strings.Cut(spec, ",")
	if !ok || from == "" || to == "" {
		return fmt.Errorf("want FROM,TO[>=SPEEDUP], got %q", v)
	}
	*c = append(*c, comparePair{From: from, To: to, MinSpeedup: min})
	return nil
}

// comparisons resolves every -compare pair against the current run. A
// pair whose benchmarks are not both present is an error — a comparison
// that silently compares nothing reports nothing.
func comparisons(pairs []comparePair, benches []Bench) ([]Comparison, error) {
	byName := make(map[string]Bench, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Comparison
	for _, p := range pairs {
		from, okF := byName[p.From]
		to, okT := byName[p.To]
		if !okF || !okT {
			return nil, fmt.Errorf("compare %s,%s: both benchmarks must be present in this run", p.From, p.To)
		}
		// Reuse the delta machinery with From standing in as the
		// "previous" record: rename To so the pairing matches.
		renamed := to
		renamed.Name = from.Name
		cmp := Comparison{From: p.From, To: p.To}
		if ds := deltas([]Bench{renamed}, []Bench{from}); len(ds) == 1 {
			cmp.Delta = ds[0]
			cmp.Delta.Name = p.To
			if cmp.NsRatio != nil && *cmp.NsRatio > 0 {
				s := 1 / *cmp.NsRatio
				cmp.Speedup = &s
			}
		}
		out = append(out, cmp)
	}
	return out, nil
}

// checkCompares enforces the >=N speedup bounds of -compare pairs.
func checkCompares(pairs []comparePair, cmps []Comparison) error {
	for i, p := range pairs {
		if p.MinSpeedup <= 0 {
			continue
		}
		if i >= len(cmps) || cmps[i].Speedup == nil {
			return fmt.Errorf("compare %s,%s: no ns/op speedup to compare", p.From, p.To)
		}
		if *cmps[i].Speedup < p.MinSpeedup {
			return fmt.Errorf("compare %s,%s: speedup %.2fx below bound %gx",
				p.From, p.To, *cmps[i].Speedup, p.MinSpeedup)
		}
	}
	return nil
}

// parse reads `go test -bench` text output: header lines (goos:, cpu:,
// …) fill the host section, Benchmark lines become entries. The -P
// GOMAXPROCS suffix go test appends to benchmark names when P != 1 is
// stripped so records taken at different parallelism still match.
func parse(in io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Host.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Host.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.Host.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return report, nil
}

func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: stripProcSuffix(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = &v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		}
	}
	return b, true
}

// stripProcSuffix removes go test's trailing "-P" parallelism marker
// (e.g. BenchmarkE7Matrix/j4-8 → BenchmarkE7Matrix/j4).
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadPrevious reads an earlier record in either format: the current
// {"host": …, "benchmarks": […]} document or the original bare array.
func loadPrevious(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var old []Bench
		if err := json.Unmarshal(data, &old); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return old, nil
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return old.Benchmarks, nil
}

// deltas pairs current benchmarks with the previous record by name;
// benchmarks present on only one side are omitted (renamed or new
// benchmarks have no meaningful ratio).
func deltas(cur, old []Bench) []Delta {
	prev := make(map[string]Bench, len(old))
	for _, b := range old {
		prev[b.Name] = b
	}
	var out []Delta
	for _, b := range cur {
		p, ok := prev[b.Name]
		if !ok {
			continue
		}
		d := Delta{Name: b.Name}
		if b.NsPerOp != nil && p.NsPerOp != nil && *p.NsPerOp > 0 {
			r := *b.NsPerOp / *p.NsPerOp
			d.NsRatio = &r
		}
		if b.BytesPerOp != nil && p.BytesPerOp != nil && *p.BytesPerOp > 0 {
			r := *b.BytesPerOp / *p.BytesPerOp
			d.BytesRatio = &r
		}
		if b.AllocsPerOp != nil && p.AllocsPerOp != nil && *p.AllocsPerOp > 0 {
			r := *b.AllocsPerOp / *p.AllocsPerOp
			d.AllocsRatio = &r
		}
		if d.NsRatio != nil || d.BytesRatio != nil || d.AllocsRatio != nil {
			out = append(out, d)
		}
	}
	return out
}
