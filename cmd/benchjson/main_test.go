package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gem
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE1GroupAccess	190899	6358 ns/op	624 B/op	19 allocs/op
BenchmarkE7Matrix/j1-4	1	3034647448 ns/op	2454188592 B/op	23868769 allocs/op
BenchmarkSweepHistories/chains=1	4688554	261.7 ns/op	48 B/op	6 allocs/op
PASS
ok  	gem	42.000s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if report.Host.GOOS != "linux" || report.Host.GOARCH != "amd64" {
		t.Errorf("host header not parsed: %+v", report.Host)
	}
	if !strings.Contains(report.Host.CPU, "Xeon") {
		t.Errorf("cpu header not parsed: %q", report.Host.CPU)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	// The -4 GOMAXPROCS suffix is stripped; the sweep's name keeps its
	// =1 parameter (not a proc suffix — it follows '=', not '-').
	if got := report.Benchmarks[1].Name; got != "BenchmarkE7Matrix/j1" {
		t.Errorf("proc suffix not stripped: %q", got)
	}
	if got := report.Benchmarks[2].Name; got != "BenchmarkSweepHistories/chains=1" {
		t.Errorf("parameterized name mangled: %q", got)
	}
	if b := report.Benchmarks[0]; b.Iterations != 190899 || *b.NsPerOp != 6358 || *b.BytesPerOp != 624 || *b.AllocsPerOp != 19 {
		t.Errorf("benchmark fields wrong: %+v", b)
	}
	if v := *report.Benchmarks[2].NsPerOp; v != 261.7 {
		t.Errorf("fractional ns/op = %v, want 261.7", v)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("input without benchmark lines must be rejected")
	}
}

// TestDeltaAgainstBareArray: the previous record may be in the original
// bare-array format; ratios are new/old.
func TestDeltaAgainstBareArray(t *testing.T) {
	prev := filepath.Join(t.TempDir(), "BENCH_old.json")
	old := `[
  {"name": "BenchmarkE1GroupAccess", "iterations": 100, "ns_per_op": 12716, "bytes_per_op": 1248},
  {"name": "BenchmarkGone", "iterations": 1, "ns_per_op": 5}
]`
	if err := os.WriteFile(prev, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-prev", prev}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Host.GoMaxProcs < 1 || report.Host.NumCPU < 1 {
		t.Errorf("host procs not recorded: %+v", report.Host)
	}
	if report.DeltaVs != "BENCH_old.json" {
		t.Errorf("delta_vs = %q", report.DeltaVs)
	}
	if len(report.Delta) != 1 || report.Delta[0].Name != "BenchmarkE1GroupAccess" {
		t.Fatalf("delta = %+v, want exactly the shared benchmark", report.Delta)
	}
	if got := *report.Delta[0].NsRatio; got != 0.5 {
		t.Errorf("ns_ratio = %v, want 0.5", got)
	}
	if got := *report.Delta[0].BytesRatio; got != 0.5 {
		t.Errorf("bytes_ratio = %v, want 0.5", got)
	}
}

// TestDeltaAgainstCurrentFormat: round-trip — a record benchjson wrote
// is accepted as the previous record.
func TestDeltaAgainstCurrentFormat(t *testing.T) {
	dir := t.TempDir()
	prev := filepath.Join(dir, "BENCH_a.json")
	var first bytes.Buffer
	if err := run(nil, strings.NewReader(sampleBench), &first); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(prev, first.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-prev", prev}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Delta) != 3 {
		t.Fatalf("delta has %d entries, want 3", len(report.Delta))
	}
	for _, d := range report.Delta {
		if *d.NsRatio != 1 {
			t.Errorf("%s: self-delta ns_ratio = %v, want 1", d.Name, *d.NsRatio)
		}
	}
}

// TestAssertBounds: -assert passes when the ns/op and allocs/op ratios
// stay within the bound, fails when either exceeds it, and always
// writes the record first so a regression still leaves evidence.
func TestAssertBounds(t *testing.T) {
	prev := filepath.Join(t.TempDir(), "BENCH_old.json")
	// Previous record: E1 at 6358 ns/op and 19 allocs/op — identical to
	// sampleBench, so the self-ratio is exactly 1.
	old := `[
  {"name": "BenchmarkE1GroupAccess", "iterations": 100, "ns_per_op": 6358, "allocs_per_op": 19},
  {"name": "BenchmarkE7Matrix/j1", "iterations": 1, "ns_per_op": 1517323724, "allocs_per_op": 23868769}
]`
	if err := os.WriteFile(prev, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-prev", prev, "-assert", "BenchmarkE1GroupAccess<=1.02"},
		strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Errorf("in-bound assertion failed: %v", err)
	}

	// E7 doubled (old record halved its time): a 1.10 bound must fail,
	// and the record must have been written anyway.
	out.Reset()
	err = run([]string{"-prev", prev, "-assert", "BenchmarkE7Matrix/j1<=1.10"},
		strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "ns/op ratio") {
		t.Errorf("regressed assertion = %v, want ns/op ratio failure", err)
	}
	var report Report
	if jerr := json.Unmarshal(out.Bytes(), &report); jerr != nil || len(report.Delta) == 0 {
		t.Errorf("record not written before the failing assertion: %v", jerr)
	}

	// An assertion naming a benchmark absent from the delta fails loudly.
	err = run([]string{"-prev", prev, "-assert", "BenchmarkNope<=1.10"},
		strings.NewReader(sampleBench), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "not present") {
		t.Errorf("missing-benchmark assertion = %v, want not-present failure", err)
	}
}

func TestAssertFlagValidation(t *testing.T) {
	if err := run([]string{"-assert", "BenchmarkX<=1.1"}, strings.NewReader(sampleBench), &bytes.Buffer{}); err == nil {
		t.Error("-assert without -prev must fail")
	}
	for _, bad := range []string{"NoBound", "<=1.1", "BenchmarkX<=0", "BenchmarkX<=zero"} {
		if err := run([]string{"-prev", "x.json", "-assert", bad}, strings.NewReader(sampleBench), &bytes.Buffer{}); err == nil {
			t.Errorf("malformed -assert %q accepted", bad)
		}
	}
}

// TestCompare: -compare pairs two benchmarks of the same run, reports
// the From-over-To speedup, and enforces an optional >=N bound.
func TestCompare(t *testing.T) {
	input := `goos: linux
BenchmarkE14WarmStore/cold 	      10	 100000000 ns/op	      5000 B/op	      50 allocs/op
BenchmarkE14WarmStore/warm 	     100	  10000000 ns/op	       500 B/op	       5 allocs/op
`
	var out bytes.Buffer
	err := run([]string{"-compare", "BenchmarkE14WarmStore/cold,BenchmarkE14WarmStore/warm>=5"},
		strings.NewReader(input), &out)
	if err != nil {
		t.Fatalf("10x speedup failed a >=5 bound: %v", err)
	}
	var report Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Compare) != 1 {
		t.Fatalf("compare section has %d entries, want 1", len(report.Compare))
	}
	c := report.Compare[0]
	if c.Speedup == nil || *c.Speedup < 9.99 || *c.Speedup > 10.01 {
		t.Errorf("speedup = %v, want 10", c.Speedup)
	}
	if c.NsRatio == nil || *c.NsRatio < 0.099 || *c.NsRatio > 0.101 {
		t.Errorf("ns_ratio = %v, want 0.1", c.NsRatio)
	}

	// A bound above the measured speedup fails — after the record is out.
	out.Reset()
	err = run([]string{"-compare", "BenchmarkE14WarmStore/cold,BenchmarkE14WarmStore/warm>=20"},
		strings.NewReader(input), &out)
	if err == nil || !strings.Contains(err.Error(), "below bound") {
		t.Errorf("under-bound compare = %v, want below-bound failure", err)
	}
	if jerr := json.Unmarshal(out.Bytes(), &report); jerr != nil || len(report.Compare) == 0 {
		t.Errorf("record not written before the failing compare bound: %v", jerr)
	}

	// A pair with an absent side fails loudly.
	err = run([]string{"-compare", "BenchmarkNope,BenchmarkE14WarmStore/warm"},
		strings.NewReader(input), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "both benchmarks") {
		t.Errorf("missing-benchmark compare = %v, want both-present failure", err)
	}

	// Malformed specs are flag errors.
	for _, bad := range []string{"OnlyOne", ",B", "A,", "A,B>=0", "A,B>=x"} {
		if err := run([]string{"-compare", bad}, strings.NewReader(input), &bytes.Buffer{}); err == nil {
			t.Errorf("malformed -compare %q accepted", bad)
		}
	}
}

func TestMissingPreviousFileErrors(t *testing.T) {
	err := run([]string{"-prev", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(sampleBench), &bytes.Buffer{})
	if err == nil {
		t.Error("missing previous record must be an error")
	}
}
