// Command gemcheck reproduces the paper's small worked artifacts from
// the command line:
//
//	gemcheck access      — the Section 4 group-access table (E1)
//	gemcheck histories   — the Section 7 history / vhs enumeration (E2)
//	gemcheck rw          — the Readers/Writers variant × property matrix (E4)
//	gemcheck distributed — dbupdate convergence and Life equivalence (E8)
//
// The -j flag (default NumCPU) sets the checking parallelism for the rw
// matrix; -j1 reproduces the sequential engine exactly. The -engine flag
// selects the temporal evaluation engine (auto and lattice use the
// lattice fixpoint engine with lattice-native counterexamples, falling
// back to sequence enumeration only on inconclusive bounds; seq is the
// enumeration oracle — all report identical verdicts),
// and -cpuprofile/-memprofile write pprof
// profiles for performance work. -trace writes a Chrome trace-event
// JSON file (load in chrome://tracing or Perfetto) and -stats prints
// span/counter statistics to stderr. -cache (off, ro or rw; default rw)
// and -cache-dir control the persistent result store used by the rw
// matrix; the table is identical with the cache on, off, warm or cold.
//
// SIGINT (Ctrl-C) interrupts a long rw matrix cleanly: the exploration
// and the checking pool stop promptly, the command exits non-zero with
// an "interrupted (partial results)" error, and any requested profile,
// trace, and stats files are still flushed and parseable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/lint"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/obs"
	"gem/internal/problems/dbupdate"
	"gem/internal/problems/life"
	"gem/internal/problems/rw"
	"gem/internal/profiling"
	"gem/internal/spec"
	"gem/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gemcheck", flag.ContinueOnError)
	j := fs.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential engine)")
	engineName := fs.String("engine", "auto", "temporal evaluation engine: auto, lattice or seq")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	cacheMode := fs.String("cache", "rw", "persistent result store: off, ro or rw")
	cacheDir := fs.String("cache-dir", "", "result store directory (default $GEM_CACHE_DIR, else the user cache dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gemcheck [-j N] [-engine E] {access|histories|rw|distributed}")
	}
	engine, err := logic.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if *trace != "" || *stats {
		obs.Enable()
	}
	// Registered before the CPU profile starts so the LIFO defer order
	// stops the profile first, then flushes the trace/stats — an
	// interrupted run still produces a parseable profile and a valid
	// (truncated) trace.
	defer func() {
		if ferr := obs.Flush(*trace, *stats, os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	switch fs.Arg(0) {
	case "access":
		err = accessTable()
	case "histories":
		err = histories()
	case "rw":
		st, serr := store.OpenFromFlags(*cacheMode, *cacheDir, os.Stderr)
		if serr != nil {
			return serr
		}
		var cache logic.VerdictCache
		if st != nil {
			cache = st
		}
		err = rwMatrix(ctx, *j, engine, cache)
	case "distributed":
		err = distributed()
	default:
		return fmt.Errorf("unknown check %q", fs.Arg(0))
	}
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted (partial results): %w", context.Cause(ctx))
	}
	if err != nil {
		return err
	}
	return profiling.WriteHeap(*memprofile)
}

// prelint runs the gemlint static analyses over a problem specification
// before any exploration: a statically defective spec fails fast with
// its diagnostics instead of paying for the exhaustive enumeration.
func prelint(name string, s *spec.Spec) error {
	res := lint.ForSpec(s)
	if errs := res.Errors(); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, d := range errs {
			msgs[i] = d.String()
		}
		return fmt.Errorf("%s specification fails lint:\n  %s", name, strings.Join(msgs, "\n  "))
	}
	return nil
}

// accessTable reproduces the paper's Section 4 allowed-enable table.
func accessTable() error {
	u := core.NewUniverse()
	elems := []string{"EL1", "EL2", "EL3", "EL4", "EL5", "EL6"}
	for _, e := range elems {
		u.AddElement(e)
	}
	u.AddGroup("G1", "EL2", "EL3")
	u.AddGroup("G2", "EL4", "EL5")
	u.AddGroup("G3", "EL3", "EL4")
	u.AddGroup("G4", "EL1")
	if err := u.Validate(); err != nil {
		return err
	}
	fmt.Println("An event in:   May enable any event in:")
	for _, src := range elems {
		var targets []string
		for _, dst := range elems {
			if u.Access(src, dst) {
				targets = append(targets, dst)
			}
		}
		fmt.Printf("  %-10s   %v\n", src, targets)
	}
	return nil
}

// histories reproduces the paper's Section 7 enumeration for the diamond
// computation e1 ⊳ e2, e1 ⊳ e3, e2 ⊳ e4, e3 ⊳ e4.
func histories() error {
	b := core.NewBuilder()
	ids := make([]core.EventID, 4)
	for i := range ids {
		ids[i] = b.Event(fmt.Sprintf("EL%d", i+1), "e"+fmt.Sprint(i+1), nil)
	}
	b.Enable(ids[0], ids[1])
	b.Enable(ids[0], ids[2])
	b.Enable(ids[1], ids[3])
	b.Enable(ids[2], ids[3])
	c, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Println("histories (prefixes):")
	history.Enumerate(c, 0, func(h history.History) bool {
		fmt.Printf("  %s\n", h)
		return true
	})
	fmt.Println("maximal valid history sequences:")
	history.EnumerateComplete(c, 0, func(s history.Sequence) bool {
		fmt.Printf("  %s\n", s)
		return true
	})
	fmt.Printf("linear extensions only: %d (vhs admit the simultaneous concurrent step)\n",
		history.EnumerateLinear(c, 0, func(history.Sequence) bool { return true }))
	return nil
}

// rwMatrix checks every Readers/Writers monitor variant against the
// property set. With j > 1 each workload's runs are streamed out of the
// simulator into a pool of property-checking workers; the aggregated
// booleans are order-independent, so the table is identical at any j.
// A cancelled ctx stops the exploration and the workers promptly; the
// caller reports the interruption. cache, when non-nil, serves property
// verdicts from the persistent store; the table is identical either way.
func rwMatrix(ctx context.Context, j int, engine logic.Engine, cache logic.VerdictCache) error {
	// Pre-flight: the Readers/Writers problem specification itself must
	// be statically well-formed before any variant is explored.
	if s, err := rw.ProblemSpec([]string{"r1", "r2", "w1"}, true); err != nil {
		return err
	} else if err := prelint("readers/writers", s); err != nil {
		return err
	}
	done := logic.Done(ctx)
	// holds evaluates one property under its own span so the trace and
	// -stats attribute engine time per property, like the restriction
	// spans in legal.Check.
	holds := func(name string, f logic.Formula, comp *core.Computation) bool {
		pctx, sp := obs.StartSpan(ctx, name)
		cx := logic.Holds(f, comp, logic.CheckOptions{Engine: engine, Ctx: pctx, Cache: cache})
		sp.End()
		return cx == nil
	}
	workloads := []rw.Workload{{Readers: 2, Writers: 1}, {Readers: 1, Writers: 2}}
	fmt.Printf("%-25s %6s %7s %7s %7s %8s\n", "VARIANT", "RUNS", "MUTEX", "R-PRIO", "W-PRIO", "SHARING")
	for _, v := range rw.Variants() {
		var meViol, rpViol, wpViol, sharing atomic.Bool
		total := 0
		for _, w := range workloads {
			runs := make(chan *core.Computation, 16)
			var wg sync.WaitGroup
			for k := 0; k < logic.Workers(j, 16); k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for comp := range runs {
						if logic.Cancelled(done) {
							continue // drain so the producer never blocks
						}
						if !holds("property rw/mutual-exclusion", rw.MutualExclusionProp(), comp) {
							meViol.Store(true)
						}
						if !holds("property rw/readers-priority", rw.ReadersPriorityProp(), comp) {
							rpViol.Store(true)
						}
						if !holds("property rw/writers-priority", rw.WritersPriorityProp(), comp) {
							wpViol.Store(true)
						}
						if logic.HoldsAtFull(rw.ReadsOverlap(), comp) == nil {
							sharing.Store(true)
						}
					}
				}()
			}
			_, err := monitor.ExploreStream(rw.NewProgram(v, w), monitor.ExploreOptions{Ctx: ctx}, func(r monitor.Run) bool {
				total++
				runs <- r.Comp
				return true
			})
			close(runs)
			wg.Wait()
			if err != nil {
				return err
			}
		}
		fmt.Printf("%-25s %6d %7v %7v %7v %8v\n", v, total,
			!meViol.Load(), !rpViol.Load(), !wpViol.Load(), sharing.Load())
	}
	return nil
}

// distributed runs the two distributed applications.
func distributed() error {
	cfg := dbupdate.Config{Sites: 3, Updates: []dbupdate.Update{{Site: 0, Value: 7}, {Site: 1, Value: 9}}}
	if err := prelint("dbupdate", dbupdate.Spec(cfg)); err != nil {
		return err
	}
	runs, _, err := dbupdate.Explore(cfg, dbupdate.ExploreOptions{})
	if err != nil {
		return err
	}
	converged := 0
	for _, r := range runs {
		if r.Converged {
			converged++
		}
	}
	fmt.Printf("dbupdate: %d schedules explored, %d converged\n", len(runs), converged)
	if converged != len(runs) {
		return fmt.Errorf("dbupdate diverged on %d schedules", len(runs)-converged)
	}

	board := life.NewBoard(5, 5)
	board[2][1], board[2][2], board[2][3] = true, true, true // blinker
	gens := 3
	want := life.SyncRun(board.Clone(), gens)
	matched := 0
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		run, err := life.AsyncRun(board.Clone(), gens, seed)
		if err != nil {
			return err
		}
		if run.Final.Equal(want) {
			matched++
		}
	}
	fmt.Printf("life: %d/%d async schedules matched the synchronous reference over %d generations\n",
		matched, seeds, gens)
	if matched != seeds {
		return fmt.Errorf("life diverged")
	}
	return nil
}
