package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestMain points the persistent result store at a throwaway directory:
// the rw subcommand opens it by default (-cache rw), and tests — and
// the interrupt test's subprocess, which inherits the environment —
// must never touch the real user cache dir.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gemcheck-test-cache-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Setenv("GEM_CACHE_DIR", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestChecks(t *testing.T) {
	for _, sub := range []string{"access", "histories", "rw", "distributed"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			if err := run([]string{sub}); err != nil {
				t.Fatalf("gemcheck %s: %v", sub, err)
			}
		})
	}
}

// TestEngineFlagRoundTrip: every engine name the flag documents is
// accepted and runs the rw matrix to the same successful completion;
// unknown names are rejected at flag-handling time, before any work.
func TestEngineFlagRoundTrip(t *testing.T) {
	for _, engine := range []string{"auto", "lattice", "seq"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			if err := run([]string{"-engine", engine, "-j", "1", "rw"}); err != nil {
				t.Fatalf("gemcheck -engine %s rw: %v", engine, err)
			}
		})
	}
	if err := run([]string{"-engine", "warp", "rw"}); err == nil {
		t.Error("unknown engine name must be rejected")
	}
}

// TestProfileFlags: -cpuprofile and -memprofile produce non-empty pprof
// files, and an unwritable profile path fails the run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-cpuprofile", cpu, "-memprofile", mem, "access"}); err != nil {
		t.Fatalf("gemcheck with profiles: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
	bad := filepath.Join(dir, "no-such-dir", "cpu.pprof")
	if err := run([]string{"-cpuprofile", bad, "access"}); err == nil {
		t.Error("unwritable cpu profile path must fail")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments must fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown check must fail")
	}
}
