package main

import "testing"

func TestChecks(t *testing.T) {
	for _, sub := range []string{"access", "histories", "rw", "distributed"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			if err := run([]string{sub}); err != nil {
				t.Fatalf("gemcheck %s: %v", sub, err)
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments must fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown check must fail")
	}
}
