package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestInterruptFlushesProfileAndTrace is the regression test for the
// truncated--cpuprofile-on-SIGINT bug: interrupting a gemcheck run used
// to kill the process before pprof.StopCPUProfile ran, leaving a
// truncated gzip stream no tool could read. With the signal-aware
// context the command must instead exit non-zero with an "interrupted"
// error while the profile and the trace file are complete and
// parseable.
//
// The subprocess is interrupted partway through the rw matrix. The
// sleep before the signal is halved on every attempt that completes
// before the signal lands, so the test stays robust on fast machines
// without ever waiting long on a slow one.
func TestInterruptFlushesProfileAndTrace(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no os.Interrupt delivery on windows")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "gemcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building gemcheck: %v\n%s", err, out)
	}

	for attempt, sleep := 0, 50*time.Millisecond; attempt < 5; attempt, sleep = attempt+1, sleep/2 {
		cpu := filepath.Join(dir, "cpu.pprof")
		trace := filepath.Join(dir, "trace.json")
		cmd := exec.Command(bin, "-j", "1", "-cpuprofile="+cpu, "-trace="+trace, "rw")
		cmd.Stdout = io.Discard
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(sleep)
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		err := cmd.Wait()
		if err == nil {
			// The run finished before the signal landed; retry with a
			// shorter head start.
			continue
		}
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("interrupted gemcheck: %v (want exit code 1), stderr:\n%s", err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "interrupted") {
			t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
		}
		checkCPUProfile(t, cpu)
		checkTraceFile(t, trace)
		return
	}
	t.Fatal("gemcheck finished before every signal attempt; could not exercise the interrupt path")
}

// checkCPUProfile asserts the profile is a complete gzip stream (pprof
// profiles are gzipped protobuf); a profile truncated by the old SIGINT
// handling fails the decode with an unexpected EOF.
func checkCPUProfile(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("cpu profile missing after interrupt: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("cpu profile is not a gzip stream: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("cpu profile is truncated: %v", err)
	}
	if cerr := zr.Close(); cerr != nil {
		t.Fatalf("cpu profile gzip checksum invalid: %v", cerr)
	}
	if len(raw) == 0 {
		t.Fatal("cpu profile is empty")
	}
}

// checkTraceFile asserts the interrupted run still flushed a valid
// trace-event JSON document (possibly with few spans, never malformed).
func checkTraceFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file missing after interrupt: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if tf.TraceEvents == nil {
		t.Fatal("trace file has no traceEvents array")
	}
}
