// Command gemmut runs mutation campaigns over the GEM specification and
// computation seeds: generate N deterministic mutants (drop a
// restriction, negate or weaken a formula node, widen a port, permute
// prerequisites, perturb the enable relation), check every unique mutant
// under the auto, lattice, and seq engines, delta-debug each failure to
// a 1-minimal counterexample, and persist the shrunk corpus through the
// result store.
//
//	gemmut                       — 2000 mutants, seed 0
//	gemmut -n 500 -seed 7 -j 4   — fixed-seed campaign on 4 workers
//	gemmut -replay gemmut        — re-check a persisted corpus
//
// The stdout report is a pure function of (-seed, -n): byte-identical
// across -j values and cache temperatures, so CI can diff campaigns.
// Engine disagreements, witnesses failing Verify, and shrink validation
// failures are findings — the command exits non-zero when any occur.
// -budget bounds wall time; an exceeded budget (like SIGINT) exits
// non-zero with partial results, since a truncated campaign is not
// comparable to a complete one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"gem/internal/logic"
	"gem/internal/mutate"
	"gem/internal/obs"
	"gem/internal/profiling"
	"gem/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemmut:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gemmut", flag.ContinueOnError)
	n := fs.Int("n", 2000, "mutants to generate")
	seed := fs.Int64("seed", 0, "campaign seed (same seed, same campaign)")
	j := fs.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential)")
	budget := fs.Duration("budget", 0, "wall-time budget (0 = unlimited); exceeding it aborts with partial results")
	name := fs.String("name", "gemmut", "campaign name for the persisted manifest")
	replay := fs.String("replay", "", "replay the named campaign's corpus from the store instead of mutating")
	verbose := fs.Bool("v", false, "also list every shrunk failure")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	cacheMode := fs.String("cache", "rw", "persistent result store: off, ro or rw")
	cacheDir := fs.String("cache-dir", "", "result store directory (default $GEM_CACHE_DIR, else the user cache dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: gemmut [-n N] [-seed S] [-j N] [-budget D] [-replay NAME]")
	}
	if *trace != "" || *stats {
		obs.Enable()
	}
	defer func() {
		if ferr := obs.Flush(*trace, *stats, os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	st, serr := store.OpenFromFlags(*cacheMode, *cacheDir, os.Stderr)
	if serr != nil {
		return serr
	}
	var cache logic.VerdictCache
	if st != nil {
		cache = st
	}

	if *replay != "" {
		entries, rerr := mutate.Replay(st, *replay, cache)
		if rerr != nil {
			return rerr
		}
		fmt.Printf("replayed %d corpus entries of campaign %s: engines agree on all\n", entries, *replay)
		return profiling.WriteHeap(*memprofile)
	}

	rep, cerr := mutate.Run(mutate.Config{
		N:           *n,
		Seed:        *seed,
		Parallelism: *j,
		Ctx:         ctx,
		Cache:       cache,
		Store:       st,
		Name:        *name,
	})
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted (partial results): %w", context.Cause(ctx))
	}
	if cerr != nil {
		return cerr
	}
	if *verbose {
		rep.RenderVerbose(os.Stdout)
	} else {
		rep.Render(os.Stdout)
	}
	if err := profiling.WriteHeap(*memprofile); err != nil {
		return err
	}
	if len(rep.Findings) > 0 {
		return fmt.Errorf("%d finding(s): engines disagree or a witness failed validation", len(rep.Findings))
	}
	return nil
}
