package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSpec = `SPEC clean
ELEMENT a
  EVENTS Ping
  RESTRICTIONS
    "ping": (FORALL x: Ping) occurred(x) ;
END
`

const warnSpec = `SPEC warn
ELEMENT a
  EVENTS Ping Pong
  RESTRICTIONS
    "ping": (FORALL x: Ping) occurred(x) ;
END
`

const errSpec = `SPEC bad
ELEMENT a
  EVENTS Ping
  RESTRICTIONS
    "unbound": (FORALL x: Ping) x |> y ;
END
`

func writeSpec(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"clean.gem", cleanSpec, 0},
		{"warn.gem", warnSpec, 1},
		{"err.gem", errSpec, 2},
		{"noparse.gem", "SPEC ( nope", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeSpec(t, tc.name, tc.src)
			var out, errb strings.Builder
			if got := run([]string{path}, &out, &errb); got != tc.want {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.want, out.String(), errb.String())
			}
		})
	}
}

func TestRunNoArgsIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if got := run(nil, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("expected usage on stderr, got: %s", errb.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{filepath.Join(t.TempDir(), "absent.gem")}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
}

func TestRunJSON(t *testing.T) {
	bad := writeSpec(t, "bad.gem", errSpec)
	var out, errb strings.Builder
	if got := run([]string{"-json", bad}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", got, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one diagnostic in JSON output")
	}
	if diags[0].Code != "GEM008" || diags[0].Severity != "error" || diags[0].File != bad {
		t.Errorf("unexpected first diagnostic: %+v", diags[0])
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	clean := writeSpec(t, "clean.gem", cleanSpec)
	var out, errb strings.Builder
	if got := run([]string{"-json", clean}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("expected empty JSON array, got: %s", out.String())
	}
}
