package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSpec = `SPEC clean
ELEMENT a
  EVENTS Ping
  RESTRICTIONS
    "ping": (FORALL x: Ping) occurred(x) ;
END
`

const warnSpec = `SPEC warn
ELEMENT a
  EVENTS Ping Pong
  RESTRICTIONS
    "ping": (FORALL x: Ping) occurred(x) ;
END
`

const errSpec = `SPEC bad
ELEMENT a
  EVENTS Ping
  RESTRICTIONS
    "unbound": (FORALL x: Ping) x |> y ;
END
`

func writeSpec(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"clean.gem", cleanSpec, 0},
		{"warn.gem", warnSpec, 1},
		{"err.gem", errSpec, 2},
		{"noparse.gem", "SPEC ( nope", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeSpec(t, tc.name, tc.src)
			var out, errb strings.Builder
			if got := run([]string{path}, &out, &errb); got != tc.want {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.want, out.String(), errb.String())
			}
		})
	}
}

func TestRunNoArgsIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if got := run(nil, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("expected usage on stderr, got: %s", errb.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{filepath.Join(t.TempDir(), "absent.gem")}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
}

func TestRunJSON(t *testing.T) {
	bad := writeSpec(t, "bad.gem", errSpec)
	var out, errb strings.Builder
	if got := run([]string{"-json", bad}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", got, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one diagnostic in JSON output")
	}
	if diags[0].Code != "GEM008" || diags[0].Severity != "error" || diags[0].File != bad {
		t.Errorf("unexpected first diagnostic: %+v", diags[0])
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	clean := writeSpec(t, "clean.gem", cleanSpec)
	var out, errb strings.Builder
	if got := run([]string{"-json", clean}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("expected empty JSON array, got: %s", out.String())
	}
}

const redundantSpec = `SPEC dup
ELEMENT a
  EVENTS
    Go
END

ELEMENT b
  EVENTS
    Go
END

RESTRICTION "first": PREREQ(a.Go -> b.Go) ;
RESTRICTION "second": PREREQ(a.Go -> b.Go) ;
`

// TestRunDeep: the deep analyses run only under -deep; the redundant
// spec is clean for the shallow linter but warns under GEM012.
func TestRunDeep(t *testing.T) {
	path := writeSpec(t, "dup.gem", redundantSpec)

	var out, errb strings.Builder
	if got := run([]string{path}, &out, &errb); got != 0 {
		t.Fatalf("shallow lint exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if got := run([]string{"-deep", path}, &out, &errb); got != 1 {
		t.Fatalf("-deep exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "GEM012") {
		t.Fatalf("-deep output missing GEM012:\n%s", out.String())
	}
}

// TestRunSARIF: -format=sarif emits a valid SARIF 2.1.0 log with a rule
// and result for the diagnostic that fired.
func TestRunSARIF(t *testing.T) {
	path := writeSpec(t, "dup.gem", redundantSpec)
	var out, errb strings.Builder
	if got := run([]string{"-deep", "-format=sarif", path}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "gemlint" {
		t.Errorf("driver name = %q, want gemlint", r.Tool.Driver.Name)
	}
	if len(r.Results) == 0 || r.Results[0].RuleID != "GEM012" {
		t.Errorf("expected a GEM012 result, got %+v", r.Results)
	}
	found := false
	for _, rule := range r.Tool.Driver.Rules {
		if rule.ID == "GEM012" {
			found = true
		}
	}
	if !found {
		t.Error("SARIF rules missing GEM012")
	}
}

// TestRunDeterministic: linting the same file set twice (exercising the
// parallel fan-out) must produce byte-identical output in every format,
// with diagnostics ordered by file, position, then code.
func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for name, src := range map[string]string{
		"a_dup.gem":  redundantSpec,
		"b_err.gem":  errSpec,
		"c_warn.gem": warnSpec,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	for _, format := range []string{"text", "json", "sarif"} {
		t.Run(format, func(t *testing.T) {
			args := append([]string{"-deep", "-format=" + format}, files...)
			var first string
			for i := 0; i < 2; i++ {
				var out, errb strings.Builder
				run(args, &out, &errb)
				if i == 0 {
					first = out.String()
				} else if out.String() != first {
					t.Errorf("output differs between runs:\n--- first ---\n%s--- second ---\n%s", first, out.String())
				}
			}
			if format == "text" {
				a := strings.Index(first, "a_dup.gem")
				b := strings.Index(first, "b_err.gem")
				c := strings.Index(first, "c_warn.gem")
				if !(a < b && b < c) {
					t.Errorf("diagnostics not in file order (a=%d b=%d c=%d):\n%s", a, b, c, first)
				}
			}
		})
	}
}
