// Command gemlint runs the static well-formedness and consistency
// analyses of internal/lint over GEM specification source files and
// reports position-annotated diagnostics. With -deep it additionally
// runs the whole-specification semantic analyses of internal/analyze
// (GEM009–GEM012: contradiction, deadlock, unreachability, redundancy).
//
// Usage:
//
//	gemlint [-deep] [-format=text|json|sarif] FILE.gem...
//	gemlint -codes
//
// -codes prints the shared GEM001–GEM020 code registry (one line per
// code: code, default severity, summary) and exits. Text output is one
// finding per line:
//
//	file.gem:12:3: GEM004 error: restriction "r" of spec: ...
//
// Files are analyzed in parallel; diagnostics are reported in a
// deterministic order (file, position, code, subject) regardless of
// which analysis finishes first, so repeated runs are byte-identical.
//
// Exit status: 0 when every file is clean (or has only informational
// output), 1 when warnings were reported but no errors, 2 on errors —
// including files that fail to parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"gem/internal/analyze"
	"gem/internal/lint"
	"gem/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileResult is the outcome of analyzing one input file.
type fileResult struct {
	diags  []lint.Diagnostic
	errMsg string // read or parse failure (exit 2)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gemlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (alias for -format=json)")
	format := fs.String("format", "", "output format: text, json, or sarif (default text)")
	deep := fs.Bool("deep", false, "run the deep semantic analyses (GEM009-GEM012)")
	codes := fs.Bool("codes", false, "print the shared GEM code registry (code, severity, summary) and exit")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gemlint [-deep] [-format=text|json|sarif] FILE.gem... | gemlint -codes")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		lint.PrintRegistry(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "gemlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	if *trace != "" || *stats {
		obs.Enable()
		defer func() {
			if err := obs.Flush(*trace, *stats, stderr); err != nil {
				fmt.Fprintf(stderr, "gemlint: %v\n", err)
			}
		}()
	}

	// Analyze every file concurrently; results land in the slot of their
	// input position, so output order never depends on scheduling.
	files := fs.Args()
	results := make([]fileResult, len(files))
	workers := runtime.NumCPU()
	if workers > len(files) {
		workers = len(files)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(files) {
					return
				}
				results[i] = analyzeFile(files[i], *deep)
			}
		}()
	}
	wg.Wait()

	exit := 0
	worsen := func(code int) {
		if code > exit {
			exit = code
		}
	}
	var all []lint.FileDiagnostic
	for i, r := range results {
		if r.errMsg != "" {
			fmt.Fprintf(stderr, "gemlint: %s\n", r.errMsg)
			worsen(2)
			continue
		}
		for _, d := range r.diags {
			all = append(all, lint.FileDiagnostic{File: files[i], Diagnostic: d})
			if d.Severity >= lint.SeverityError {
				worsen(2)
			} else {
				worsen(1)
			}
		}
	}
	lint.SortFileDiagnostics(all)

	switch *format {
	case "text":
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
		}
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.FileDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			worsen(2)
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, all); err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			worsen(2)
		}
	}
	return exit
}

func analyzeFile(file string, deep bool) fileResult {
	src, err := os.ReadFile(file)
	if err != nil {
		return fileResult{errMsg: err.Error()}
	}
	if deep {
		res, err := analyze.AnalyzeSource(string(src))
		if err != nil {
			return fileResult{errMsg: fmt.Sprintf("%s: %v", file, err)}
		}
		return fileResult{diags: res.All()}
	}
	res, err := lint.AnalyzeSource(string(src))
	if err != nil {
		return fileResult{errMsg: fmt.Sprintf("%s: %v", file, err)}
	}
	return fileResult{diags: res.Diags}
}
