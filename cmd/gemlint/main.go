// Command gemlint runs the static well-formedness and consistency
// analyses of internal/lint over GEM specification source files and
// reports position-annotated diagnostics.
//
// Usage:
//
//	gemlint [-json] FILE.gem...
//
// Text output is one finding per line:
//
//	file.gem:12:3: GEM004 error: restriction "r" of spec: ...
//
// Exit status: 0 when every file is clean (or has only informational
// output), 1 when warnings were reported but no errors, 2 on errors —
// including files that fail to parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gem/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileDiag is one diagnostic tagged with its file, the JSON output unit.
type fileDiag struct {
	File string `json:"file"`
	lint.Diagnostic
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gemlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gemlint [-json] FILE.gem...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	exit := 0
	worsen := func(code int) {
		if code > exit {
			exit = code
		}
	}
	var all []fileDiag
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			worsen(2)
			continue
		}
		res, err := lint.AnalyzeSource(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "gemlint: %s: %v\n", file, err)
			worsen(2)
			continue
		}
		for _, d := range res.Diags {
			all = append(all, fileDiag{File: file, Diagnostic: d})
			if d.Severity >= lint.SeverityError {
				worsen(2)
			} else {
				worsen(1)
			}
		}
		if !*jsonOut {
			lint.Print(stdout, file, res.Diags)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			worsen(2)
		}
	}
	return exit
}
