// Command tracecheck validates a Chrome trace-event JSON file of the
// shape internal/obs emits: a top-level traceEvents array of complete
// ("X"), counter ("C"), and metadata ("M") events. It is the CI smoke
// gate for the -trace flag on the gem CLIs — scripts/ci.sh runs the
// CLIs with -trace and then feeds the files through tracecheck, so a
// regression that produces malformed JSON or structurally invalid
// events (a span without a duration, a non-positive tid, a counter
// without a value) fails the build before anyone opens Perfetto.
//
// Usage:
//
//	tracecheck FILE.json...
//
// For each file it prints one line, e.g.
//
//	trace.json: ok (217 spans, 12 counters)
//
// and exits non-zero if any file is invalid. -min-spans=N additionally
// requires at least N span events per file, so a pipeline that silently
// stopped emitting spans is caught too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// event mirrors the trace-event fields tracecheck validates. Unknown
// fields are ignored so the checker keeps working if obs adds more.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

type file struct {
	TraceEvents []event `json:"traceEvents"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	minSpans := fs.Int("min-spans", 0, "fail unless each file holds at least this many span events")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-spans=N] FILE.json...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	exit := 0
	for _, path := range fs.Args() {
		spans, counters, err := checkFile(path, *minSpans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: ok (%d spans, %d counters)\n", path, spans, counters)
	}
	return exit
}

func checkFile(path string, minSpans int) (spans, counters int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var tf file
	if err := json.Unmarshal(data, &tf); err != nil {
		return 0, 0, fmt.Errorf("not valid JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return 0, 0, fmt.Errorf("no traceEvents array")
	}
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return 0, 0, fmt.Errorf("event %d: empty name", i)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts == nil || ev.Dur == nil {
				return 0, 0, fmt.Errorf("event %d (%q): span without ts/dur", i, ev.Name)
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				return 0, 0, fmt.Errorf("event %d (%q): negative ts or dur", i, ev.Name)
			}
			if ev.Tid <= 0 {
				return 0, 0, fmt.Errorf("event %d (%q): span with non-positive tid %d", i, ev.Name, ev.Tid)
			}
		case "C":
			counters++
			if ev.Args == nil {
				return 0, 0, fmt.Errorf("event %d (%q): counter without args.value", i, ev.Name)
			}
			if _, ok := ev.Args["value"]; !ok {
				return 0, 0, fmt.Errorf("event %d (%q): counter without args.value", i, ev.Name)
			}
		case "M":
			// metadata: name + pid is enough
		default:
			return 0, 0, fmt.Errorf("event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Pid == nil {
			return 0, 0, fmt.Errorf("event %d (%q): missing pid", i, ev.Name)
		}
	}
	if spans < minSpans {
		return 0, 0, fmt.Errorf("only %d span event(s), want at least %d", spans, minSpans)
	}
	return spans, counters, nil
}
