package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileValid(t *testing.T) {
	path := write(t, "ok.json", `{
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "gem"}},
    {"name": "parse", "ph": "X", "ts": 10.5, "dur": 3.25, "pid": 1, "tid": 1},
    {"name": "lattice.builds", "ph": "C", "ts": 20, "pid": 1, "args": {"value": 7}}
  ],
  "displayTimeUnit": "ms"
}`)
	spans, counters, err := checkFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spans != 1 || counters != 1 {
		t.Errorf("got %d spans, %d counters, want 1, 1", spans, counters)
	}
}

func TestCheckFileRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"truncated JSON":    `{"traceEvents": [{"name": "p"`,
		"no traceEvents":    `{"events": []}`,
		"span without dur":  `{"traceEvents": [{"name": "s", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]}`,
		"span with tid 0":   `{"traceEvents": [{"name": "s", "ph": "X", "ts": 1, "dur": 1, "pid": 1, "tid": 0}]}`,
		"negative dur":      `{"traceEvents": [{"name": "s", "ph": "X", "ts": 1, "dur": -2, "pid": 1, "tid": 1}]}`,
		"counter w/o value": `{"traceEvents": [{"name": "c", "ph": "C", "ts": 1, "pid": 1, "args": {}}]}`,
		"unknown phase":     `{"traceEvents": [{"name": "e", "ph": "Z", "ts": 1, "pid": 1}]}`,
		"empty name":        `{"traceEvents": [{"name": "", "ph": "M", "pid": 1}]}`,
		"missing pid":       `{"traceEvents": [{"name": "m", "ph": "M"}]}`,
	}
	for label, content := range cases {
		path := write(t, "bad.json", content)
		if _, _, err := checkFile(path, 0); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestCheckFileMinSpans(t *testing.T) {
	path := write(t, "empty.json", `{"traceEvents": []}`)
	if _, _, err := checkFile(path, 0); err != nil {
		t.Errorf("empty trace with no minimum: %v", err)
	}
	if _, _, err := checkFile(path, 1); err == nil {
		t.Error("empty trace must fail -min-spans=1")
	}
}
