// Command gemverify runs the paper's Section 11 verification matrix: the
// Monitor, CSP, and ADA solutions of the One-Slot Buffer, Bounded Buffer,
// and Reader's-Priority Readers/Writers problems, each exhaustively
// explored and checked against its GEM problem specification with the
// Section 9 sat methodology. Exits non-zero if any cell fails.
//
// The -j flag (default NumCPU) sets the checking parallelism: runs are
// streamed out of the simulators into a pool of sat-check workers that
// share each computation's memoized history lattice. -j1 reproduces the
// sequential engine exactly; any -j reports the same verdicts and the
// same first-failure computation index.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gem/internal/check"
)

func main() {
	j := flag.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential engine)")
	flag.Parse()
	opts := check.Options{Parallelism: *j}
	if err := check.RunMatrix(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
	fmt.Println("\nnegative controls (must be refuted):")
	if err := check.RunRefutations(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
}
