// Command gemverify runs the paper's Section 11 verification matrix: the
// Monitor, CSP, and ADA solutions of the One-Slot Buffer, Bounded Buffer,
// and Reader's-Priority Readers/Writers problems, each exhaustively
// explored and checked against its GEM problem specification with the
// Section 9 sat methodology. Exits non-zero if any cell fails.
package main

import (
	"fmt"
	"os"

	"gem/internal/check"
)

func main() {
	if err := check.RunMatrix(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
	fmt.Println("\nnegative controls (must be refuted):")
	if err := check.RunRefutations(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
}
