// Command gemverify runs the paper's Section 11 verification matrix: the
// Monitor, CSP, and ADA solutions of the One-Slot Buffer, Bounded Buffer,
// and Reader's-Priority Readers/Writers problems, each exhaustively
// explored and checked against its GEM problem specification with the
// Section 9 sat methodology. Exits non-zero if any cell fails.
//
// The -j flag (default NumCPU) sets the checking parallelism: runs are
// streamed out of the simulators into a pool of sat-check workers that
// share each computation's memoized history lattice. -j1 reproduces the
// sequential engine exactly; any -j reports the same verdicts and the
// same first-failure computation index.
//
// The -engine flag selects the temporal evaluation engine: auto (the
// default) evaluates every temporal restriction with the lattice
// fixpoint engine — which now covers the full restriction language and
// extracts its own counterexamples from the history lattice — and falls
// back to sequence enumeration only when the engine's bounds are
// inconclusive; lattice forces the fixpoint engine (same fallback rule,
// with fallbacks observable on the engine.lattice.fallback -stats
// counter); seq is the historical sequence engine, kept as the
// agreement-test oracle. All engines report the same verdicts; witness
// shapes may differ, but every counterexample is a genuine failing
// history. -cpuprofile and -memprofile write pprof profiles for
// performance work; -trace writes a Chrome trace-event JSON file (load
// in chrome://tracing or Perfetto) and -stats prints span/counter
// statistics to stderr.
//
// The -cache flag (off, ro, or rw; default rw) controls the persistent
// result store behind incremental checking: restriction verdicts, guard
// vectors, whole-check sat records, and history-lattice artifacts are
// keyed by content hashes of the canonical spec and the computation
// fingerprint, so a repeat run against an unchanged spec serves verdicts
// from disk instead of re-evaluating. -cache-dir overrides the location
// (default $GEM_CACHE_DIR, else the user cache dir); GEM_CACHE_BUDGET
// bounds the cache size in bytes. Verdicts, counterexample renderings,
// and exit codes are identical with the cache on, off, warm, or cold.
//
// -sarif writes the matrix outcome as a SARIF log: one GEM017 result per
// failed cell, an empty result set for a fully verified matrix.
//
// SIGINT (Ctrl-C) interrupts the run cleanly: exploration and checking
// stop promptly, the command exits non-zero with an "interrupted"
// error, and any requested profile, trace, and stats files are still
// flushed — so a too-long run can be interrupted and profiled anyway.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"gem/internal/check"
	"gem/internal/lint"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/profiling"
	"gem/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gemverify", flag.ContinueOnError)
	j := fs.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential engine)")
	engineName := fs.String("engine", "auto", "temporal evaluation engine: auto, lattice or seq")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	cacheMode := fs.String("cache", "rw", "persistent result store: off, ro or rw")
	cacheDir := fs.String("cache-dir", "", "result store directory (default $GEM_CACHE_DIR, else the user cache dir)")
	sarif := fs.String("sarif", "", "write the matrix outcome as SARIF to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := logic.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if *trace != "" || *stats {
		obs.Enable()
	}
	// Registered before the CPU profile starts so the LIFO defer order
	// stops the profile first, then flushes the trace/stats — both run
	// even when the context below was cancelled mid-matrix.
	defer func() {
		if ferr := obs.Flush(*trace, *stats, os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()

	st, err := store.OpenFromFlags(*cacheMode, *cacheDir, os.Stderr)
	if err != nil {
		return err
	}

	opts := check.Options{Parallelism: *j, Engine: engine, Ctx: ctx}
	if st != nil {
		opts.Cache = st
	}
	cells, merr := check.RunMatrixCells(os.Stdout, opts)
	// The SARIF log is written even for a failing matrix — the failures
	// are exactly what it exists to report.
	if serr := writeSARIF(*sarif, cells); serr != nil && merr == nil {
		merr = serr
	}
	if merr != nil {
		return merr
	}
	fmt.Println("\nnegative controls (must be refuted):")
	if err := check.RunRefutations(os.Stdout, opts); err != nil {
		return err
	}
	return profiling.WriteHeap(*memprofile)
}

// writeSARIF renders the matrix cells as a SARIF log: one GEM017 result
// per failed cell (the cell name as the subject, the failure — including
// any counterexample rendering — as the message), none for a verified
// matrix. The output is deterministic for deterministic cell outcomes,
// so a warm-cache run emits a byte-identical log.
func writeSARIF(path string, cells []check.Cell) error {
	if path == "" {
		return nil
	}
	var diags []lint.FileDiagnostic
	for _, cell := range cells {
		if cell.Verified || cell.Err == nil {
			continue
		}
		diags = append(diags, lint.FileDiagnostic{Diagnostic: lint.Diagnostic{
			Code:     lint.CodeSatRefuted,
			Severity: lint.SeverityError,
			Subject:  cell.Scenario.Problem + "/" + string(cell.Scenario.Language),
			Message:  cell.Err.Error(),
		}})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := lint.WriteSARIFAs(f, "gemverify", diags)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
