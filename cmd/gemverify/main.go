// Command gemverify runs the paper's Section 11 verification matrix: the
// Monitor, CSP, and ADA solutions of the One-Slot Buffer, Bounded Buffer,
// and Reader's-Priority Readers/Writers problems, each exhaustively
// explored and checked against its GEM problem specification with the
// Section 9 sat methodology. Exits non-zero if any cell fails.
//
// The -j flag (default NumCPU) sets the checking parallelism: runs are
// streamed out of the simulators into a pool of sat-check workers that
// share each computation's memoized history lattice. -j1 reproduces the
// sequential engine exactly; any -j reports the same verdicts and the
// same first-failure computation index.
//
// The -engine flag selects the temporal evaluation engine: auto (the
// default) decides sequence-insensitive restrictions with the lattice
// fixpoint evaluator and falls back to sequence enumeration otherwise,
// lattice forces the fixpoint evaluator for its fragment, and seq is the
// historical sequence engine. All engines report the same verdicts and
// counterexamples. -cpuprofile and -memprofile write pprof profiles for
// performance work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gem/internal/check"
	"gem/internal/logic"
	"gem/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gemverify", flag.ContinueOnError)
	j := fs.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential engine)")
	engineName := fs.String("engine", "auto", "temporal evaluation engine: auto, lattice or seq")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := logic.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()

	opts := check.Options{Parallelism: *j, Engine: engine}
	if err := check.RunMatrix(os.Stdout, opts); err != nil {
		return err
	}
	fmt.Println("\nnegative controls (must be refuted):")
	if err := check.RunRefutations(os.Stdout, opts); err != nil {
		return err
	}
	return profiling.WriteHeap(*memprofile)
}
