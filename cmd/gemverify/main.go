// Command gemverify runs the paper's Section 11 verification matrix: the
// Monitor, CSP, and ADA solutions of the One-Slot Buffer, Bounded Buffer,
// and Reader's-Priority Readers/Writers problems, each exhaustively
// explored and checked against its GEM problem specification with the
// Section 9 sat methodology. Exits non-zero if any cell fails.
//
// The -j flag (default NumCPU) sets the checking parallelism: runs are
// streamed out of the simulators into a pool of sat-check workers that
// share each computation's memoized history lattice. -j1 reproduces the
// sequential engine exactly; any -j reports the same verdicts and the
// same first-failure computation index.
//
// The -engine flag selects the temporal evaluation engine: auto (the
// default) evaluates every temporal restriction with the lattice
// fixpoint engine — which now covers the full restriction language and
// extracts its own counterexamples from the history lattice — and falls
// back to sequence enumeration only when the engine's bounds are
// inconclusive; lattice forces the fixpoint engine (same fallback rule,
// with fallbacks observable on the engine.lattice.fallback -stats
// counter); seq is the historical sequence engine, kept as the
// agreement-test oracle. All engines report the same verdicts; witness
// shapes may differ, but every counterexample is a genuine failing
// history. -cpuprofile and -memprofile write pprof profiles for
// performance work; -trace writes a Chrome trace-event JSON file (load
// in chrome://tracing or Perfetto) and -stats prints span/counter
// statistics to stderr.
//
// SIGINT (Ctrl-C) interrupts the run cleanly: exploration and checking
// stop promptly, the command exits non-zero with an "interrupted"
// error, and any requested profile, trace, and stats files are still
// flushed — so a too-long run can be interrupted and profiled anyway.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"gem/internal/check"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemverify:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gemverify", flag.ContinueOnError)
	j := fs.Int("j", runtime.NumCPU(), "checking parallelism (1 = sequential engine)")
	engineName := fs.String("engine", "auto", "temporal evaluation engine: auto, lattice or seq")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := logic.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if *trace != "" || *stats {
		obs.Enable()
	}
	// Registered before the CPU profile starts so the LIFO defer order
	// stops the profile first, then flushes the trace/stats — both run
	// even when the context below was cancelled mid-matrix.
	defer func() {
		if ferr := obs.Flush(*trace, *stats, os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()

	opts := check.Options{Parallelism: *j, Engine: engine, Ctx: ctx}
	if err := check.RunMatrix(os.Stdout, opts); err != nil {
		return err
	}
	fmt.Println("\nnegative controls (must be refuted):")
	if err := check.RunRefutations(os.Stdout, opts); err != nil {
		return err
	}
	return profiling.WriteHeap(*memprofile)
}
