// Command gemgo statically extracts GEM models from real Go packages and
// reports the Go-specific concurrency diagnostics GEM013–GEM020: channel
// operations with no possible partner, lock-ordering inversions,
// goroutines that can block forever, double locks of non-reentrant
// mutexes, and — from the race pass over the extracted partial order —
// data races on shared variables, closes racing sends, and WaitGroup
// Adds racing Waits. The extraction turns each root function into a GEM
// model — goroutines are elements, synchronization and shared-variable
// operations are events, control flow and channel/lock pairing are the
// enable edges — so the same verification machinery gemlint and
// gemverify use runs on real code unchanged, and may-happen-in-parallel
// is just event incomparability.
//
// Usage:
//
//	gemgo [-dump-spec] [-format=text|json|sarif] [-j N] PACKAGES...
//	gemgo -codes
//
// A package argument is a directory, or a directory followed by /... to
// walk the tree (skipping testdata and vendor, like the go tool).
// -dump-spec prints each extracted model — elements, restrictions, the
// computation — instead of running the diagnostics. -codes prints the
// shared GEM001–GEM020 code registry and exits.
//
// Exit status: 0 when every package is clean, 1 when warnings were
// reported but no errors, 2 on errors — including packages that fail to
// parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"gem/internal/gofront"
	"gem/internal/lint"
	"gem/internal/obs"
	"gem/internal/race"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// pkgResult is the outcome of analyzing one package directory.
type pkgResult struct {
	res    *gofront.Result
	errMsg string // load failure (exit 2)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gemgo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (alias for -format=json)")
	format := fs.String("format", "", "output format: text, json, or sarif (default text)")
	dump := fs.Bool("dump-spec", false, "print the extracted GEM model for each root function instead of diagnosing")
	codes := fs.Bool("codes", false, "print the shared GEM code registry (code, severity, summary) and exit")
	jobs := fs.Int("j", runtime.NumCPU(), "number of packages to analyze in parallel")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gemgo [-dump-spec] [-format=text|json|sarif] [-j N] PACKAGES... | gemgo -codes")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		lint.PrintRegistry(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "gemgo: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	if *trace != "" || *stats {
		obs.Enable()
		defer func() {
			if err := obs.Flush(*trace, *stats, stderr); err != nil {
				fmt.Fprintf(stderr, "gemgo: %v\n", err)
			}
		}()
	}

	dirs, err := gofront.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "gemgo: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "gemgo: no packages matched")
		return 2
	}

	// Analyze packages concurrently; results land in the slot of their
	// input position so output never depends on scheduling.
	results := make([]pkgResult, len(dirs))
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(dirs) {
					return
				}
				res, err := gofront.AnalyzeDir(dirs[i])
				if err != nil {
					results[i] = pkgResult{errMsg: fmt.Sprintf("%s: %v", dirs[i], err)}
					continue
				}
				// The race pass runs per model, after extraction; its
				// findings merge into the package's diagnostic stream.
				for _, m := range res.Models {
					res.Diags = append(res.Diags, race.Check(m)...)
				}
				lint.SortFileDiagnostics(res.Diags)
				results[i] = pkgResult{res: res}
			}
		}()
	}
	wg.Wait()

	exit := 0
	worsen := func(code int) {
		if code > exit {
			exit = code
		}
	}
	var all []lint.FileDiagnostic
	for _, r := range results {
		if r.errMsg != "" {
			fmt.Fprintf(stderr, "gemgo: %s\n", r.errMsg)
			worsen(2)
			continue
		}
		if *dump {
			for _, m := range r.res.Models {
				gofront.DumpSpec(stdout, m)
			}
			continue
		}
		for _, d := range r.res.Diags {
			all = append(all, d)
			if d.Severity >= lint.SeverityError {
				worsen(2)
			} else {
				worsen(1)
			}
		}
	}
	if *dump {
		return exit
	}
	lint.SortFileDiagnostics(all)

	switch *format {
	case "text":
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
		}
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.FileDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "gemgo: %v\n", err)
			worsen(2)
		}
	case "sarif":
		if err := lint.WriteSARIFAs(stdout, "gemgo", all); err != nil {
			fmt.Fprintf(stderr, "gemgo: %v\n", err)
			worsen(2)
		}
	}
	return exit
}
