package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const (
	fixtures     = "../../internal/gofront/testdata/src"
	raceFixtures = "../../internal/race/testdata/src"
)

// TestRunCorpus runs gemgo over every fixture package — the gofront
// corpus and the race corpus: defective fixtures must report exactly
// the code they are named for (with the exit status its severity
// implies), clean lookalikes must report nothing.
func TestRunCorpus(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join(fixtures, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected at least 10 fixture packages, found %d", len(dirs))
	}
	raceDirs, err := filepath.Glob(filepath.Join(raceFixtures, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raceDirs) < 8 {
		t.Fatalf("expected at least 8 race fixture packages, found %d", len(raceDirs))
	}
	dirs = append(dirs, raceDirs...)
	for _, dir := range dirs {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			var out, errb strings.Builder
			code := run([]string{dir}, &out, &errb)
			if strings.HasPrefix(name, "clean_") {
				if code != 0 || out.String() != "" {
					t.Errorf("clean fixture: exit=%d output:\n%s%s", code, out.String(), errb.String())
				}
				return
			}
			wantCode := strings.ToUpper(name[:strings.Index(name, "_")])
			if code == 0 {
				t.Errorf("defective fixture exited 0; stderr: %s", errb.String())
			}
			for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
				if !strings.Contains(line, wantCode+" ") {
					t.Errorf("line reports a code other than %s:\n%s", wantCode, line)
				}
			}
		})
	}
}

// TestRunParallelDeterministic: the -j fan-out over both corpora must
// produce byte-identical, file-ordered output regardless of the worker
// count — the race pass included.
func TestRunParallelDeterministic(t *testing.T) {
	patterns := []string{fixtures + "/...", raceFixtures + "/..."}
	var first string
	for i, j := range []string{"1", "8"} {
		var out, errb strings.Builder
		run(append([]string{"-j", j}, patterns...), &out, &errb)
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Errorf("-j %s output differs:\n--- j=1 ---\n%s--- j=%s ---\n%s", j, first, j, out.String())
		}
	}
	for _, want := range []string{"GEM013", "GEM016", "GEM018", "GEM019", "GEM020"} {
		if !strings.Contains(first, want) {
			t.Fatalf("corpus output missing %s:\n%s", want, first)
		}
	}
}

// TestRunSARIF: -format=sarif over the corpus is valid SARIF 2.1.0 with
// the gemgo driver name and a rule entry for every reported code.
func TestRunSARIF(t *testing.T) {
	var out, errb strings.Builder
	run([]string{"-format=sarif", fixtures + "/...", raceFixtures + "/..."}, &out, &errb)
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "gemgo" {
		t.Errorf("driver name = %q, want gemgo", r.Tool.Driver.Name)
	}
	rules := make(map[string]bool)
	for _, rule := range r.Tool.Driver.Rules {
		rules[rule.ID] = true
	}
	if len(r.Results) == 0 {
		t.Fatal("no SARIF results for the defect corpus")
	}
	for _, res := range r.Results {
		if !rules[res.RuleID] {
			t.Errorf("result rule %s missing from rules block", res.RuleID)
		}
	}
	// The race corpus must contribute its own rule.
	if !rules["GEM018"] {
		t.Error("race corpus produced no GEM018 rule in the SARIF rules block")
	}
}

// TestRunJSONClean: a clean package yields an empty JSON array and exit 0.
func TestRunJSONClean(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", filepath.Join(fixtures, "clean_gem013_paired")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("expected empty JSON array, got: %s", out.String())
	}
}

// TestRunCodes: -codes prints the full shared registry.
func TestRunCodes(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-codes"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, want := range []string{
		"GEM001", "GEM013", "GEM014", "GEM015", "GEM016",
		"GEM017", "GEM018", "GEM019", "GEM020",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-codes output missing %s", want)
		}
	}
}

// TestRunDumpSpec: -dump-spec renders the extracted model instead of
// diagnostics.
func TestRunDumpSpec(t *testing.T) {
	var out, errb strings.Builder
	run([]string{"-dump-spec", filepath.Join(fixtures, "clean_gem013_paired")}, &out, &errb)
	for _, want := range []string{"model main.main", "element main.g1", "rendezvous_ch", "computation:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-dump-spec output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunNoArgsIsUsageError mirrors the gemlint convention.
func TestRunNoArgsIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if got := run(nil, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("expected usage on stderr, got: %s", errb.String())
	}
}

// TestRunMissingDir: a nonexistent package is a load error (exit 2).
func TestRunMissingDir(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{t.TempDir() + "/absent"}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
}
