// Command gemc compiles and checks a GEM specification written in the
// concrete syntax (see internal/gemlang): it parses the file, validates
// the element/group/thread structure, and prints a summary of the
// compiled specification — or, with -format, re-emits it as canonical
// GEM source. With -lint it additionally runs the gemlint static
// analyses and fails on any error-severity finding; -deep adds the
// whole-specification semantic analyses (GEM009–GEM012). The flags
// compose in any order relative to each other and the file argument.
//
// Usage:
//
//	gemc [-format] [-lint] [-deep] [-trace=FILE] [-stats] FILE.gem
//
// -trace writes a Chrome trace-event JSON file and -stats prints
// span/counter statistics to stderr. Because gemc accepts its flags in
// any position, -trace must use the -trace=FILE form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gem/internal/analyze"
	"gem/internal/gemlang"
	"gem/internal/lint"
	"gem/internal/obs"
	"gem/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gemc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("gemc", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	format := fs.Bool("format", false, "re-emit the specification as canonical GEM source")
	lintFlag := fs.Bool("lint", false, "run the gemlint static analyses; errors fail the compile")
	deepFlag := fs.Bool("deep", false, "run the deep semantic analyses too (implies -lint)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (use -trace=FILE)")
	stats := fs.Bool("stats", false, "print span and counter statistics to stderr on exit")
	usage := func() error {
		var b strings.Builder
		fmt.Fprintln(&b, "usage: gemc [-format] [-lint] [-deep] [-trace=FILE] [-stats] FILE.gem")
		fs.SetOutput(&b)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
		return fmt.Errorf("%s", strings.TrimRight(b.String(), "\n"))
	}
	// gemc flags and the file argument compose in any order: pull the
	// flag-shaped arguments forward before parsing (the stdlib parser
	// stops at the first positional). This is why value-carrying flags
	// must use the -flag=value form — a detached value would be taken
	// for the file argument.
	var flags, pos []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && a != "-" {
			flags = append(flags, a)
		} else {
			pos = append(pos, a)
		}
	}
	if err := fs.Parse(append(flags, pos...)); err != nil {
		return usage()
	}
	if fs.NArg() != 1 {
		return usage()
	}
	if *trace != "" || *stats {
		obs.Enable()
		defer func() {
			if ferr := obs.Flush(*trace, *stats, os.Stderr); ferr != nil && err == nil {
				err = ferr
			}
		}()
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	s, err := gemlang.Parse(string(src))
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if *lintFlag || *deepFlag {
		var diags []lint.Diagnostic
		if *deepFlag {
			res, err := analyze.AnalyzeSource(string(src))
			if err != nil {
				return err
			}
			diags = res.All()
		} else {
			res, err := lint.AnalyzeSource(string(src))
			if err != nil {
				return err
			}
			diags = res.Diags
		}
		lint.Print(stdout, file, diags)
		errs := 0
		for _, d := range diags {
			if d.Severity >= lint.SeverityError {
				errs++
			}
		}
		if errs > 0 {
			return fmt.Errorf("lint: %d error(s) in %s", errs, file)
		}
	}
	if *format {
		fmt.Fprint(stdout, gemlang.Format(s))
		return nil
	}
	dump(s, stdout)
	return nil
}

func dump(s *spec.Spec, w io.Writer) {
	fmt.Fprintf(w, "specification %s\n", s.Name)
	for _, name := range s.ElementNames() {
		d, _ := s.Element(name)
		fmt.Fprintf(w, "  element %s", name)
		if d.TypeName != "" {
			fmt.Fprintf(w, " : %s", d.TypeName)
		}
		fmt.Fprintln(w)
		for _, ec := range d.Events {
			fmt.Fprintf(w, "    event %s", ec.Name)
			if len(ec.Params) > 0 {
				fmt.Fprint(w, "(")
				for i, p := range ec.Params {
					if i > 0 {
						fmt.Fprint(w, ", ")
					}
					fmt.Fprintf(w, "%s: %s", p.Name, p.Type)
				}
				fmt.Fprint(w, ")")
			}
			fmt.Fprintln(w)
		}
		for _, r := range d.Restrictions {
			fmt.Fprintf(w, "    restriction %q\n", r.Name)
		}
	}
	for _, name := range s.GroupNames() {
		g, _ := s.Group(name)
		fmt.Fprintf(w, "  group %s members=%v", name, g.Members)
		if len(g.Ports) > 0 {
			fmt.Fprint(w, " ports=")
			for i, p := range g.Ports {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%s.%s", p.Element, p.Class)
			}
		}
		fmt.Fprintln(w)
		for _, r := range g.Restrictions {
			fmt.Fprintf(w, "    restriction %q\n", r.Name)
		}
	}
	for _, tt := range s.Threads() {
		fmt.Fprintf(w, "  thread %s path=%d classes\n", tt.Name, len(tt.Path))
	}
	count := len(s.Restrictions())
	fmt.Fprintf(w, "  %d restriction(s) total\n", count)
}
