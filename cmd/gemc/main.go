// Command gemc compiles and checks a GEM specification written in the
// concrete syntax (see internal/gemlang): it parses the file, validates
// the element/group/thread structure, and prints a summary of the
// compiled specification — or, with -format, re-emits it as canonical
// GEM source.
//
// Usage:
//
//	gemc [-format] FILE.gem
package main

import (
	"fmt"
	"os"

	"gem/internal/gemlang"
	"gem/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gemc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	format := false
	if len(args) > 0 && args[0] == "-format" {
		format = true
		args = args[1:]
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: gemc [-format] FILE.gem")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	s, err := gemlang.Parse(string(src))
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if format {
		fmt.Print(gemlang.Format(s))
		return nil
	}
	dump(s)
	return nil
}

func dump(s *spec.Spec) {
	fmt.Printf("specification %s\n", s.Name)
	for _, name := range s.ElementNames() {
		d, _ := s.Element(name)
		fmt.Printf("  element %s", name)
		if d.TypeName != "" {
			fmt.Printf(" : %s", d.TypeName)
		}
		fmt.Println()
		for _, ec := range d.Events {
			fmt.Printf("    event %s", ec.Name)
			if len(ec.Params) > 0 {
				fmt.Print("(")
				for i, p := range ec.Params {
					if i > 0 {
						fmt.Print(", ")
					}
					fmt.Printf("%s: %s", p.Name, p.Type)
				}
				fmt.Print(")")
			}
			fmt.Println()
		}
		for _, r := range d.Restrictions {
			fmt.Printf("    restriction %q\n", r.Name)
		}
	}
	for _, name := range s.GroupNames() {
		g, _ := s.Group(name)
		fmt.Printf("  group %s members=%v", name, g.Members)
		if len(g.Ports) > 0 {
			fmt.Print(" ports=")
			for i, p := range g.Ports {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Printf("%s.%s", p.Element, p.Class)
			}
		}
		fmt.Println()
		for _, r := range g.Restrictions {
			fmt.Printf("    restriction %q\n", r.Name)
		}
	}
	for _, tt := range s.Threads() {
		fmt.Printf("  thread %s path=%d classes\n", tt.Name, len(tt.Path))
	}
	count := len(s.Restrictions())
	fmt.Printf("  %d restriction(s) total\n", count)
}
