package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOnShippedSpec(t *testing.T) {
	if err := run([]string{"../../examples/specs/readerswriters.gem"}); err != nil {
		t.Fatalf("gemc on the shipped spec: %v", err)
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments must fail")
	}
	if err := run([]string{"a", "b"}); err == nil {
		t.Error("two arguments must fail")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent.gem"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestRunParseError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gem")
	if err := os.WriteFile(bad, []byte("ELEMENT X EVENTS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("parse error must be reported")
	}
}

func TestRunValidationError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "invalid.gem")
	src := "GROUP G MEMBERS(ghost) END\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("validation error must be reported")
	}
}

func TestRunFormatRoundTrip(t *testing.T) {
	if err := run([]string{"-format", "../../examples/specs/readerswriters.gem"}); err != nil {
		t.Fatalf("gemc -format: %v", err)
	}
}

func TestRunOnBoundedBufferSpec(t *testing.T) {
	if err := run([]string{"../../examples/specs/boundedbuffer.gem"}); err != nil {
		t.Fatalf("gemc on the bounded-buffer spec: %v", err)
	}
}
