package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runQuiet(args ...string) error { return run(args, io.Discard) }

func TestRunOnShippedSpec(t *testing.T) {
	if err := runQuiet("../../examples/specs/readerswriters.gem"); err != nil {
		t.Fatalf("gemc on the shipped spec: %v", err)
	}
}

func TestRunUsage(t *testing.T) {
	if err := runQuiet(); err == nil {
		t.Error("no arguments must fail")
	} else if !strings.Contains(err.Error(), "usage:") {
		t.Errorf("error must carry the usage message, got: %v", err)
	}
	if err := runQuiet("a", "b"); err == nil {
		t.Error("two file arguments must fail")
	}
	if err := runQuiet("-nonsense", "a"); err == nil {
		t.Error("unknown flag must fail")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := runQuiet("/nonexistent.gem"); err == nil {
		t.Error("missing file must fail")
	}
}

func TestRunParseError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gem")
	if err := os.WriteFile(bad, []byte("ELEMENT X EVENTS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(bad); err == nil {
		t.Error("parse error must be reported")
	}
}

func TestRunValidationError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "invalid.gem")
	src := "GROUP G MEMBERS(ghost) END\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(bad); err == nil {
		t.Error("validation error must be reported")
	}
}

func TestRunFormatRoundTrip(t *testing.T) {
	if err := runQuiet("-format", "../../examples/specs/readerswriters.gem"); err != nil {
		t.Fatalf("gemc -format: %v", err)
	}
}

func TestRunOnBoundedBufferSpec(t *testing.T) {
	if err := runQuiet("../../examples/specs/boundedbuffer.gem"); err != nil {
		t.Fatalf("gemc on the bounded-buffer spec: %v", err)
	}
}

// TestFlagsComposeInAnyOrder is the regression test for the historical
// ad-hoc argument handling, which recognized -format only as the first
// argument. Flags must now compose in any order, including after the
// file argument.
func TestFlagsComposeInAnyOrder(t *testing.T) {
	const file = "../../examples/specs/boundedbuffer.gem"
	orders := [][]string{
		{"-format", "-lint", file},
		{"-lint", "-format", file},
		{file, "-format", "-lint"},
		{"-lint", file, "-format"},
	}
	var want string
	for i, args := range orders {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		if i == 0 {
			want = b.String()
			if !strings.Contains(want, "ELEMENT") {
				t.Fatalf("-format output missing source, got:\n%s", want)
			}
			continue
		}
		if b.String() != want {
			t.Errorf("run(%v) output differs from run(%v)", args, orders[0])
		}
	}
}

// TestRunLintFailsOnDefectiveSpec: -lint must fail the compile when the
// analyzer reports errors, even though the spec parses and validates.
func TestRunLintFailsOnDefectiveSpec(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "cyclic.gem")
	src := `ELEMENT a EVENTS Go END
ELEMENT b EVENTS Go END
RESTRICTION "fwd": PREREQ(a.Go -> b.Go) ;
RESTRICTION "bwd": PREREQ(b.Go -> a.Go) ;
`
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-lint", bad}, &b)
	if err == nil {
		t.Fatal("-lint must fail on a prerequisite cycle")
	}
	if !strings.Contains(b.String(), "GEM004") {
		t.Errorf("diagnostics must name GEM004, got:\n%s", b.String())
	}
	// Without -lint the same file still compiles (the defect is a lint
	// finding, not a structural validation error).
	if err := runQuiet(bad); err != nil {
		t.Errorf("without -lint the spec must still compile: %v", err)
	}
}

// TestRunLintCleanSpec: the shipped example specs must be lint-clean.
func TestRunLintCleanSpec(t *testing.T) {
	for _, f := range []string{
		"../../examples/specs/readerswriters.gem",
		"../../examples/specs/boundedbuffer.gem",
	} {
		if err := runQuiet("-lint", f); err != nil {
			t.Errorf("gemc -lint %s: %v", f, err)
		}
	}
}
