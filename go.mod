module gem

go 1.22
