#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race
# detector (the parallel check engine is concurrency-heavy, so -race is
# mandatory, not optional). Run from the repository root:
#
#   ./scripts/ci.sh          # full suite
#   ./scripts/ci.sh -short   # fast subset (exhaustive explorations skipped)
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...
echo "==> go build ./..."
go build ./...
echo "==> go test -race $* ./..."
go test -race "$@" ./...
echo "==> ok"
