#!/bin/sh
# CI gate: vet, lint, build, and run the full test suite under the race
# detector (the parallel check engine is concurrency-heavy, so -race is
# mandatory, not optional). Run from the repository root:
#
#   ./scripts/ci.sh          # full suite
#   ./scripts/ci.sh -short   # fast subset (exhaustive explorations skipped)
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...
if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed, skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck ./..."
	govulncheck ./...
else
	echo "==> govulncheck not installed, skipping"
fi
echo "==> go build ./..."
go build ./...
echo "==> gemlint -deep examples/specs"
go run ./cmd/gemlint -deep examples/specs/*.gem
echo "==> observability smoke: -stats/-trace produce valid trace-event JSON"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/gemlint -deep -stats -trace "$tracedir/lint.json" examples/specs/*.gem >/dev/null 2>"$tracedir/lint.stats"
go run ./cmd/gemcheck -j 2 -cache off -stats -trace "$tracedir/check.json" rw >/dev/null 2>"$tracedir/check.stats"
go run ./cmd/tracecheck -min-spans 1 "$tracedir/lint.json" "$tracedir/check.json"
grep -q '== spans ==' "$tracedir/check.stats"
echo "==> gemgo fixture corpora: defects report exactly their code, cleans report nothing"
go build -o "$tracedir/gemgo" ./cmd/gemgo
for dir in internal/gofront/testdata/src/*/ internal/race/testdata/src/*/; do
	name="$(basename "$dir")"
	out="$tracedir/gemgo.$name.out"
	status=0
	"$tracedir/gemgo" "$dir" >"$out" 2>&1 || status=$?
	case "$name" in
	clean_*)
		if [ "$status" -ne 0 ] || [ -s "$out" ]; then
			echo "==> FAIL: clean fixture $name reported findings (exit $status):" >&2
			cat "$out" >&2
			exit 1
		fi
		;;
	*)
		want="$(echo "$name" | cut -d_ -f1 | tr '[:lower:]' '[:upper:]')"
		got="$(grep -o 'GEM[0-9]*' "$out" | sort -u)"
		if [ "$status" -eq 0 ] || [ "$got" != "$want" ]; then
			echo "==> FAIL: fixture $name: want exactly $want (exit nonzero), got codes [$got] exit $status:" >&2
			cat "$out" >&2
			exit 1
		fi
		;;
	esac
done
echo "==> gemgo SARIF smoke: corpus output is one valid gemgo-driver run"
"$tracedir/gemgo" -format=sarif internal/gofront/testdata/src/... >"$tracedir/gemgo.sarif" || true
grep -q '"version": "2.1.0"' "$tracedir/gemgo.sarif"
grep -q '"name": "gemgo"' "$tracedir/gemgo.sarif"
grep -q '"ruleId": "GEM013"' "$tracedir/gemgo.sarif"
echo "==> gemgo race-pass SARIF smoke over a racy fixture"
"$tracedir/gemgo" -format=sarif internal/race/testdata/src/gem018_unlocked_counter >"$tracedir/race.sarif" || true
grep -q '"version": "2.1.0"' "$tracedir/race.sarif"
grep -q '"ruleId": "GEM018"' "$tracedir/race.sarif"
echo "==> gemgo race corpus: -j1 and -j4 output byte-identical"
"$tracedir/gemgo" -j 1 internal/race/testdata/src/... >"$tracedir/race.j1.out" || true
"$tracedir/gemgo" -j 4 internal/race/testdata/src/... >"$tracedir/race.j4.out" || true
cmp "$tracedir/race.j1.out" "$tracedir/race.j4.out"
grep -q 'GEM018' "$tracedir/race.j1.out"
grep -q 'GEM019' "$tracedir/race.j1.out"
grep -q 'GEM020' "$tracedir/race.j1.out"
echo "==> lattice engine gate: full matrix under forced -engine lattice, no silent seq fallback"
# -cache off keeps this gate hermetic: a warm store would serve the
# verdicts from disk and the engine.lattice spans below would vanish.
go run ./cmd/gemverify -engine lattice -j 2 -cache off -stats >/dev/null 2>"$tracedir/verify.stats"
# The lattice engine must actually carry the temporal restrictions...
grep -q 'engine\.lattice ' "$tracedir/verify.stats"
# ...and never hit an inconclusive bound: a fallback counter in the
# stats means some check silently delegated to sequence enumeration.
if grep -q 'engine\.lattice\.fallback' "$tracedir/verify.stats"; then
	echo "==> FAIL: lattice engine silently fell back to seq on a shipped spec" >&2
	grep 'engine\.lattice\.fallback' "$tracedir/verify.stats" >&2
	exit 1
fi
echo "==> incremental store smoke: warm repeat hits, identical verdicts and SARIF"
cachedir="$tracedir/cache"
go run ./cmd/gemverify -engine lattice -j 2 -cache rw -cache-dir "$cachedir" \
	-sarif "$tracedir/cold.sarif" -stats >"$tracedir/cold.out" 2>"$tracedir/cold.stats"
go run ./cmd/gemverify -engine lattice -j 2 -cache rw -cache-dir "$cachedir" \
	-sarif "$tracedir/warm.sarif" -stats >"$tracedir/warm.out" 2>"$tracedir/warm.stats"
# The warm run must actually be served from the store...
grep -Eq 'store\.hit +[1-9]' "$tracedir/warm.stats"
# ...reporting verdicts identical modulo the per-run TIME column...
awk '{$4=""; print}' "$tracedir/cold.out" >"$tracedir/cold.verdicts"
awk '{$4=""; print}' "$tracedir/warm.out" >"$tracedir/warm.verdicts"
diff "$tracedir/cold.verdicts" "$tracedir/warm.verdicts"
# ...and a byte-identical SARIF log.
cmp "$tracedir/cold.sarif" "$tracedir/warm.sarif"
echo "==> mutation campaign gate: fixed seed, zero findings, -j1/-j4 byte-identical"
# A fixed-seed 250-mutant campaign must complete with zero engine
# disagreements and zero shrinker validation failures (gemmut exits
# non-zero on any finding), and the report must be a pure function of
# the seed: identical bytes at any parallelism. -cache off keeps the
# gate hermetic.
go build -o "$tracedir/gemmut" ./cmd/gemmut
"$tracedir/gemmut" -n 250 -seed 7 -j 1 -cache off >"$tracedir/mut.j1.out"
"$tracedir/gemmut" -n 250 -seed 7 -j 4 -cache off >"$tracedir/mut.j4.out"
cmp "$tracedir/mut.j1.out" "$tracedir/mut.j4.out"
grep -q 'findings: none' "$tracedir/mut.j1.out"
echo "==> mutation corpus smoke: persisted campaign replays with engine agreement"
"$tracedir/gemmut" -n 250 -seed 7 -j 4 -cache rw -cache-dir "$tracedir/mutcache" >/dev/null
"$tracedir/gemmut" -replay gemmut -cache rw -cache-dir "$tracedir/mutcache" | grep -q 'engines agree on all'
echo "==> go test -race $* ./..."
go test -race "$@" ./...
echo "==> bench smoke (-short, one iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x -short ./... >/dev/null
echo "==> ok"
