#!/bin/sh
# CI gate: vet, lint, build, and run the full test suite under the race
# detector (the parallel check engine is concurrency-heavy, so -race is
# mandatory, not optional). Run from the repository root:
#
#   ./scripts/ci.sh          # full suite
#   ./scripts/ci.sh -short   # fast subset (exhaustive explorations skipped)
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...
if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed, skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck ./..."
	govulncheck ./...
else
	echo "==> govulncheck not installed, skipping"
fi
echo "==> go build ./..."
go build ./...
echo "==> gemlint -deep examples/specs"
go run ./cmd/gemlint -deep examples/specs/*.gem
echo "==> observability smoke: -stats/-trace produce valid trace-event JSON"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/gemlint -deep -stats -trace "$tracedir/lint.json" examples/specs/*.gem >/dev/null 2>"$tracedir/lint.stats"
go run ./cmd/gemcheck -j 2 -stats -trace "$tracedir/check.json" rw >/dev/null 2>"$tracedir/check.stats"
go run ./cmd/tracecheck -min-spans 1 "$tracedir/lint.json" "$tracedir/check.json"
grep -q '== spans ==' "$tracedir/check.stats"
echo "==> lattice engine gate: full matrix under forced -engine lattice, no silent seq fallback"
go run ./cmd/gemverify -engine lattice -j 2 -stats >/dev/null 2>"$tracedir/verify.stats"
# The lattice engine must actually carry the temporal restrictions...
grep -q 'engine\.lattice ' "$tracedir/verify.stats"
# ...and never hit an inconclusive bound: a fallback counter in the
# stats means some check silently delegated to sequence enumeration.
if grep -q 'engine\.lattice\.fallback' "$tracedir/verify.stats"; then
	echo "==> FAIL: lattice engine silently fell back to seq on a shipped spec" >&2
	grep 'engine\.lattice\.fallback' "$tracedir/verify.stats" >&2
	exit 1
fi
echo "==> go test -race $* ./..."
go test -race "$@" ./...
echo "==> bench smoke (-short, one iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x -short ./... >/dev/null
echo "==> ok"
