#!/bin/sh
# Benchmark sweep: runs every benchmark (E1..E10 plus the package
# micro-benchmarks) with allocation stats and records the run as
# BENCH_<date>.json next to the raw text output, so successive runs can
# be diffed. Usage, from the repository root:
#
#   ./scripts/bench.sh                # all benchmarks, one iteration set
#   ./scripts/bench.sh BenchmarkE4    # filter by -bench regexp
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-.}"
date="$(date +%Y%m%d)"
txt="BENCH_${date}.txt"
json="BENCH_${date}.json"

echo "==> go test -run '^$' -bench $pattern -benchmem ./..."
go test -run '^$' -bench "$pattern" -benchmem ./... | tee "$txt"

# Convert the benchmark lines into a JSON array: one object per
# benchmark with ns/op, B/op, allocs/op as available.
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "")     line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    if (n++) printf(",\n")
    printf("%s", line)
}
END { if (n) printf("\n"); print "]" }
' "$txt" > "$json"
echo "==> wrote $txt and $json"
