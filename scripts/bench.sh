#!/bin/sh
# Benchmark sweep: runs every benchmark (E1..E15 plus the package
# micro-benchmarks — E15 is the gemgo extraction+race-analysis corpus
# pass, so the static race pipeline has a perf baseline) with
# allocation stats and records the run as
# BENCH_<date>.json next to the raw text output. The JSON is produced by
# cmd/benchjson and carries a host section (GOMAXPROCS/NumCPU, so
# single-CPU hosts are identifiable) plus a delta section with new/old
# ratios against the most recent earlier BENCH_*.json — including
# records in the original bare-array format. Usage, from the repository
# root:
#
#   ./scripts/bench.sh                # all benchmarks, one iteration set
#   ./scripts/bench.sh BenchmarkE4    # filter by -bench regexp
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-.}"
date="$(date +%Y%m%d)"
txt="BENCH_${date}.txt"
json="BENCH_${date}.json"

# The most recent record is the delta baseline — possibly today's own
# file when the sweep reruns on the same day, which is why the new JSON
# is staged in a temp file instead of truncating the baseline first.
prev="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"

echo "==> go test -run '^$' -bench $pattern -benchmem ./..."
go test -run '^$' -bench "$pattern" -benchmem ./... | tee "$txt"

# The warm arm of E14 must stay dramatically faster than the cold arm —
# the incremental-checking claim. It is an in-run comparison (no
# baseline record needed), added conditionally so filtered sweeps that
# skip E14 still work.
compares=""
if grep -q 'BenchmarkE14WarmStore/cold' "$txt" && grep -q 'BenchmarkE14WarmStore/warm' "$txt"; then
	compares="-compare BenchmarkE14WarmStore/cold,BenchmarkE14WarmStore/warm>=5"
fi
# Same in-run claim for the mutation campaign (E16): the warm store must
# serve the per-restriction verdicts the campaign's engine matrix keeps
# re-requesting. The bound is looser than E14's — campaigns also pay for
# generation, dedup, and shrinking, which the store cannot skip.
if grep -q 'BenchmarkE16Campaign/cold' "$txt" && grep -q 'BenchmarkE16Campaign/warm' "$txt"; then
	compares="$compares -compare BenchmarkE16Campaign/cold,BenchmarkE16Campaign/warm>=2"
fi

if [ -n "$prev" ]; then
	# The always-on instrumentation (internal/obs) must stay free when
	# disabled: the E4 j1 ns/op and allocs/op ratios against the previous
	# record are bounded at 1.10 (generous run-to-run noise, tight enough
	# to catch a hot-path allocation). The E12 lattice-engine
	# counterexample path gets the same bound once a baseline record
	# contains it (benchjson -assert errors on a name missing from either
	# record, so the bound is added conditionally). benchjson writes the
	# record before evaluating the assertions, so a regression still
	# leaves the JSON — only the exit status reports it.
	asserts="-assert BenchmarkE4MonitorRW/j1<=1.10"
	if grep -q 'BenchmarkE12FailingSpecs/reads-finish-first/engine=lattice' "$prev" &&
		grep -q 'BenchmarkE12FailingSpecs/reads-finish-first/engine=lattice' "$txt"; then
		asserts="$asserts -assert BenchmarkE12FailingSpecs/reads-finish-first/engine=lattice<=1.10"
	fi
	status=0
	# shellcheck disable=SC2086 # $asserts/$compares are flag lists, word-split on purpose
	go run ./cmd/benchjson -prev "$prev" $asserts $compares \
		<"$txt" >"$json.tmp" || status=$?
	mv "$json.tmp" "$json"
	echo "==> wrote $txt and $json (delta vs $prev)"
	if [ "$status" -ne 0 ]; then
		echo "==> FAIL: benchmark regression vs $prev (see delta/compare sections in $json)" >&2
		exit "$status"
	fi
else
	echo "==> no baseline BENCH_*.json found, skipping regression asserts"
	status=0
	# shellcheck disable=SC2086 # $compares is a flag list, word-split on purpose
	go run ./cmd/benchjson $compares <"$txt" >"$json.tmp" || status=$?
	mv "$json.tmp" "$json"
	echo "==> wrote $txt and $json (this run becomes the baseline)"
	if [ "$status" -ne 0 ]; then
		echo "==> FAIL: warm-store speedup below bound (see compare section in $json)" >&2
		exit "$status"
	fi
fi
